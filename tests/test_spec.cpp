// The unified scenario API and its JSON spec front end:
//  - spec round-trips: parse(spec_to_json(config)) reproduces the exact
//    canonical cache key for every scenario kind;
//  - malformed specs fail with pointed errors naming the offending key;
//  - campaign grids expand the cross product and patch arbitrary dotted
//    fields;
//  - the acceptance equivalences: a fleet-of-one, uncapped, thermal-off
//    spec through submit(ScenarioConfig) is bit-identical to submit_dvfs,
//    and a campaign covering a figure sweep is bit-identical to
//    submit_sweep (shared engine cache pins key identity);
//  - EngineStats breaks the counters down by scenario kind.
#include "core/spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/config_builder.hpp"
#include "core/engine.hpp"
#include "core/figures.hpp"
#include "core/scenario.hpp"

namespace gpupower::core {
namespace {

ExperimentConfig small_experiment() {
  return ExperimentConfigBuilder()
      .dtype("fp16")
      .n(64)
      .seeds(2)
      .sampling(gpupower::gpusim::SamplingPlan::fast(6, 0.5))
      .pattern("gaussian(sigma=210) | sparsity(25%)")
      .build();
}

DvfsConfig small_dvfs() {
  return DvfsConfigBuilder()
      .experiment(small_experiment())
      .governor("utilization(up=80%, down=30%)")
      .timeline("burst(period=0.2, duty=30%, high=100%, low=5%, dur=0.5)")
      .slice(0.01)
      .pstates(5)
      .build();
}

FleetConfig small_fleet() {
  gpupower::gpusim::fleet::ThermalConfig thermal;
  thermal.enabled = true;
  return FleetConfigBuilder()
      .experiment(small_experiment())
      .add_timeline("burst(period=0.2, duty=30%, high=100%, low=5%, dur=0.5)")
      .add_device(gpupower::gpusim::GpuModel::kA100PCIe,
                  "utilization(up=70%, down=30%)", 0, 2)
      .add_device(gpupower::gpusim::GpuModel::kH100SXM, "fixed(2)", 0, 1)
      .allocator("priority")
      .cap(417.345678901234567)  // deliberately not %g-representable
      .thermal(thermal)
      .slice(0.01)
      .pstates(5)
      .build();
}

ScenarioConfig round_trip(const ScenarioConfig& config) {
  const std::string text = spec_to_json(config).dump(/*pretty=*/true);
  const SpecParseResult parsed = parse_scenario_spec_text(text);
  EXPECT_TRUE(parsed.ok) << parsed.error << "\nspec was:\n" << text;
  return parsed.spec.config;
}

// --- round-trips -----------------------------------------------------------

TEST(Spec, RoundTripStaticCanonicalKey) {
  ExperimentConfig config = small_experiment();
  gpupower::gpusim::ProcessVariation variation;
  variation.sigma_fraction = 0.03;
  variation.instance = 7;
  variation.per_seed = true;
  config.variation = variation;
  config.base_seed = 1234567;
  const ScenarioConfig original{config};
  EXPECT_EQ(canonical_scenario_key(round_trip(original)),
            canonical_scenario_key(original));
}

TEST(Spec, RoundTripDvfsCanonicalKey) {
  DvfsConfig config = small_dvfs();
  // Values that do not survive 6-significant-digit display rounding: the
  // spec document must carry full precision.
  config.governor.boost_util = 0.123456789012345;
  config.slice_s = 0.0100000000000002;
  const ScenarioConfig original{config};
  EXPECT_EQ(canonical_scenario_key(round_trip(original)),
            canonical_scenario_key(original));
}

TEST(Spec, RoundTripFleetCanonicalKey) {
  const ScenarioConfig original{small_fleet()};
  EXPECT_EQ(canonical_scenario_key(round_trip(original)),
            canonical_scenario_key(original));
}

TEST(Spec, RoundTripDvfsWithPhasePatterns) {
  const DvfsConfig config =
      DvfsConfigBuilder()
          .experiment(small_experiment())
          .timeline("constant(util=80%, dur=0.2, pattern=0) | idle(dur=0.1)")
          .add_phase_pattern("gaussian(sigma=100) | zero_lsb(0.5)")
          .slice(0.01)
          .pstates(3)
          .build();
  const ScenarioConfig original{config};
  EXPECT_EQ(canonical_scenario_key(round_trip(original)),
            canonical_scenario_key(original));
}

// --- pointed errors --------------------------------------------------------

TEST(Spec, UnknownKeyFailsNamingTheKey) {
  const SpecParseResult parsed = parse_scenario_spec_text(R"json({
    "scenario": "static",
    "experiment": {"dtype": "fp16", "n": 64, "seeds": 1, "dtyep": "fp32"}
  })json");
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("'dtyep'"), std::string::npos) << parsed.error;
  EXPECT_NE(parsed.error.find("experiment"), std::string::npos)
      << parsed.error;
}

TEST(Spec, UnknownTopLevelKeyFails) {
  const SpecParseResult parsed = parse_scenario_spec_text(R"json({
    "scenario": "dvfs",
    "timeline": "idle(dur=0.1)",
    "governer": "oracle()"
  })json");
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("'governer'"), std::string::npos)
      << parsed.error;
}

TEST(Spec, DanglingPhasePatternReferenceFails) {
  const SpecParseResult parsed = parse_scenario_spec_text(R"json({
    "scenario": "dvfs",
    "experiment": {"dtype": "fp16", "n": 64, "seeds": 1},
    "timeline": "constant(util=80%, dur=0.2, pattern=1)",
    "phase_patterns": ["gaussian()"]
  })json");
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("phase pattern"), std::string::npos)
      << parsed.error;
}

TEST(Spec, MissingTimelineFails) {
  const SpecParseResult parsed =
      parse_scenario_spec_text(R"json({"scenario": "dvfs"})json");
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("timeline"), std::string::npos) << parsed.error;
}

TEST(Spec, MalformedJsonReportsByteOffset) {
  const SpecParseResult parsed =
      parse_scenario_spec_text(R"json({"scenario": "static",})json");
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("JSON syntax error"), std::string::npos)
      << parsed.error;
}

TEST(Spec, BadCampaignAxisFieldFailsAtExpansion) {
  // "allocatr" patches an unknown key into the fleet base; the strict
  // per-point parse rejects it, naming both the point and the key.
  const SpecParseResult parsed = parse_scenario_spec_text(R"json({
    "scenario": "campaign",
    "base": {
      "scenario": "fleet",
      "experiment": {"dtype": "fp16", "n": 64, "seeds": 1},
      "timelines": ["idle(dur=0.1)"],
      "devices": [{}]
    },
    "axes": [{"field": "allocatr", "values": ["uniform", "priority"]}]
  })json");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  std::vector<CampaignPoint> points;
  std::string error;
  EXPECT_FALSE(expand_campaign(parsed.spec, points, error));
  EXPECT_NE(error.find("'allocatr'"), std::string::npos) << error;
}

TEST(Spec, EmptyCampaignAxisValuesFail) {
  const SpecParseResult parsed = parse_scenario_spec_text(R"json({
    "scenario": "campaign",
    "base": {"scenario": "static"},
    "axes": [{"field": "experiment.n", "values": []}]
  })json");
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("values"), std::string::npos) << parsed.error;
}

TEST(Spec, CampaignCannotSweepScenarioKind) {
  const SpecParseResult parsed = parse_scenario_spec_text(R"json({
    "scenario": "campaign",
    "base": {"scenario": "static"},
    "axes": [{"field": "scenario", "values": ["static", "dvfs"]}]
  })json");
  ASSERT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("scenario"), std::string::npos) << parsed.error;
}

// --- campaign expansion ----------------------------------------------------

TEST(Spec, CampaignExpandsCrossProductRowMajor) {
  const SpecParseResult parsed = parse_scenario_spec_text(R"json({
    "scenario": "campaign",
    "base": {
      "scenario": "static",
      "experiment": {"dtype": "fp16", "n": 64, "seeds": 1}
    },
    "axes": [
      {"field": "experiment.dtype", "values": ["fp16", "int8"]},
      {"field": "experiment.n", "values": [{"value": 64, "label": "n64"},
                                           {"value": 96, "label": "n96"},
                                           {"value": 128, "label": "n128"}]}
    ]
  })json");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  std::vector<CampaignPoint> points;
  std::string error;
  ASSERT_TRUE(expand_campaign(parsed.spec, points, error)) << error;
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0].label, "fp16@n64");
  EXPECT_EQ(points[2].label, "fp16@n128");
  EXPECT_EQ(points[3].label, "int8@n64");
  EXPECT_EQ(points[5].label, "int8@n128");
  EXPECT_EQ(points[5].config.experiment().n, 128u);
  EXPECT_EQ(points[5].config.experiment().dtype,
            gpupower::numeric::DType::kINT8);
  // Every grid point is a distinct job.
  EXPECT_NE(canonical_scenario_key(points[0].config),
            canonical_scenario_key(points[1].config));
}

TEST(Spec, CampaignPatchCreatesMissingIntermediateObjects) {
  // The base omits "experiment" entirely; the axis patch creates it.
  const SpecParseResult parsed = parse_scenario_spec_text(R"json({
    "scenario": "campaign",
    "base": {"scenario": "static"},
    "axes": [{"field": "experiment.n", "values": [64, 96]}]
  })json");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  std::vector<CampaignPoint> points;
  std::string error;
  ASSERT_TRUE(expand_campaign(parsed.spec, points, error)) << error;
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].config.experiment().n, 64u);
  EXPECT_EQ(points[1].config.experiment().n, 96u);
}

// --- scenario submission equivalences --------------------------------------

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_DOUBLE_EQ(a.power_w, b.power_w);
  EXPECT_DOUBLE_EQ(a.power_std_w, b.power_std_w);
  EXPECT_DOUBLE_EQ(a.iteration_s, b.iteration_s);
  EXPECT_DOUBLE_EQ(a.energy_per_iter_j, b.energy_per_iter_j);
  EXPECT_DOUBLE_EQ(a.alignment, b.alignment);
  EXPECT_DOUBLE_EQ(a.weight_fraction, b.weight_fraction);
  EXPECT_EQ(a.throttled, b.throttled);
  EXPECT_DOUBLE_EQ(a.clock_frac, b.clock_frac);
  EXPECT_EQ(a.seeds, b.seeds);
}

TEST(Scenario, TypeErasedSubmitMatchesSerialReference) {
  ExperimentEngine engine(EngineOptions::with_workers(4));
  const ExperimentConfig config = small_experiment();
  const ScenarioHandle handle = engine.submit(ScenarioConfig(config));
  EXPECT_EQ(handle.kind(), ScenarioKind::kStatic);
  expect_identical(handle.get().static_result(), run_experiment(config));
}

TEST(Scenario, TypedAndTypeErasedSubmitsShareOneJob) {
  ExperimentEngine engine(EngineOptions::with_workers(4));
  const ExperimentConfig config = small_experiment();
  const ExperimentHandle typed = engine.submit(config);
  const ScenarioHandle erased = engine.submit(ScenarioConfig(config));
  engine.wait_all();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.jobs_computed, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  expect_identical(typed.get(), erased.get().static_result());
}

TEST(Scenario, SubmitRejectsInvalidConfigsViaRegistry) {
  ExperimentEngine engine(EngineOptions::with_workers(2));
  ExperimentConfig config = small_experiment();
  config.seeds = 0;
  EXPECT_THROW((void)engine.submit(ScenarioConfig(config)),
               std::invalid_argument);
  DvfsConfig dvfs;  // default: empty timeline
  dvfs.experiment = small_experiment();
  EXPECT_THROW((void)engine.submit(ScenarioConfig(dvfs)),
               std::invalid_argument);
  engine.wait_all();  // nothing outstanding; must not hang
}

// The acceptance criterion: a fleet of one device, uncapped, thermal off,
// authored as a JSON spec and run through submit(ScenarioConfig), is
// bit-identical to the pre-redesign submit_dvfs path.
TEST(Scenario, FleetOfOneSpecMatchesSubmitDvfsBitwise) {
  const SpecParseResult parsed = parse_scenario_spec_text(R"json({
    "scenario": "fleet",
    "experiment": {
      "gpu": "a100", "dtype": "fp16", "n": 64, "seeds": 2,
      "pattern": "gaussian(sigma=210) | sparsity(25%)",
      "sampling": {"tiles": 6, "k_fraction": 0.5}
    },
    "timelines": ["burst(period=0.2, duty=30%, high=100%, low=5%, dur=0.5)"],
    "devices": [{"gpu": "a100", "governor": "utilization(up=80%, down=30%)"}],
    "cap_w": null,
    "slice_s": 0.01,
    "pstates": 5
  })json");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.spec.config.kind(), ScenarioKind::kFleet);

  ExperimentEngine engine(EngineOptions::with_workers(4));
  const ScenarioHandle fleet_handle = engine.submit(parsed.spec.config);
  const DvfsHandle dvfs_handle = engine.submit_dvfs(small_dvfs());
  engine.wait_all();

  const FleetResult& fleet = fleet_handle.get().fleet();
  const DvfsResult& dvfs = dvfs_handle.get();
  EXPECT_DOUBLE_EQ(fleet.energy_j, dvfs.energy_j);
  EXPECT_DOUBLE_EQ(fleet.energy_std_j, dvfs.energy_std_j);
  EXPECT_DOUBLE_EQ(fleet.avg_power_w, dvfs.avg_power_w);
  EXPECT_DOUBLE_EQ(fleet.peak_power_w, dvfs.peak_power_w);
  EXPECT_DOUBLE_EQ(fleet.completion_s, dvfs.completion_s);
  EXPECT_DOUBLE_EQ(fleet.backlog_max_s, dvfs.backlog_max_s);
  EXPECT_DOUBLE_EQ(fleet.mean_backlog_s, dvfs.mean_backlog_s);
  EXPECT_DOUBLE_EQ(fleet.transitions, dvfs.transitions);
  // Slice-level trace identity of the representative seed.
  ASSERT_EQ(fleet.trace.devices.size(), 1u);
  const auto& fleet_slices = fleet.trace.devices[0].replay.slices;
  const auto& dvfs_slices = dvfs.trace.slices;
  ASSERT_EQ(fleet_slices.size(), dvfs_slices.size());
  for (std::size_t i = 0; i < fleet_slices.size(); ++i) {
    EXPECT_DOUBLE_EQ(fleet_slices[i].power_w, dvfs_slices[i].power_w);
    EXPECT_EQ(fleet_slices[i].pstate, dvfs_slices[i].pstate);
    EXPECT_DOUBLE_EQ(fleet_slices[i].backlog_s, dvfs_slices[i].backlog_s);
  }
  // A fleet of one: the p99-across-devices SLO metric equals the max.
  EXPECT_DOUBLE_EQ(fleet.backlog_p99_s, fleet.backlog_max_s);
}

// The acceptance criterion: a campaign spec covering an existing figure
// sweep is bit-identical to submit_sweep — pinned through the shared
// engine cache (identical canonical keys mean the campaign's submissions
// all attach to the sweep's jobs).
TEST(Scenario, CampaignFigureSweepMatchesSubmitSweepBitwise) {
  ExperimentEngine engine(EngineOptions::with_workers(4));
  ExperimentConfig base = small_experiment();
  base.pattern = baseline_gaussian_spec();
  const SweepRun sweep = engine.submit_sweep(FigureId::kFig6aSparsity, base);

  const std::string base_spec =
      spec_to_json(ScenarioConfig(base)).dump(/*pretty=*/false);
  const SpecParseResult parsed = parse_scenario_spec_text(
      std::string(R"json({"scenario": "campaign", "base": )json") +
      base_spec +
      R"json(, "axes": [{"field": "experiment.pattern", "figure": "fig6a"}]})json");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  std::vector<CampaignPoint> points;
  std::string error;
  ASSERT_TRUE(expand_campaign(parsed.spec, points, error)) << error;
  ASSERT_EQ(points.size(), sweep.points.size());

  std::vector<ScenarioHandle> handles;
  for (const CampaignPoint& point : points) {
    handles.push_back(engine.submit(point.config));
  }
  engine.wait_all();

  const EngineStats stats = engine.stats();
  // Every campaign point attached to the sweep's cached job: key identity.
  EXPECT_EQ(stats.cache_hits, points.size());
  EXPECT_EQ(stats.jobs_computed, sweep.points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].label, sweep.points[i].label);
    expect_identical(handles[i].get().static_result(),
                     sweep.handles[i].get());
  }
}

// --- per-kind engine stats --------------------------------------------------

TEST(Engine, StatsBreakDownByScenarioKind) {
  ExperimentEngine engine(EngineOptions::with_workers(4));
  (void)engine.submit(small_experiment());
  (void)engine.submit_dvfs(small_dvfs());
  FleetConfig fleet = small_fleet();
  fleet.experiment.seeds = 3;
  (void)engine.submit_fleet(fleet);
  engine.wait_all();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.of(ScenarioKind::kStatic).submitted, 1u);
  EXPECT_EQ(stats.of(ScenarioKind::kDvfs).submitted, 1u);
  EXPECT_EQ(stats.of(ScenarioKind::kFleet).submitted, 1u);
  EXPECT_EQ(stats.of(ScenarioKind::kStatic).jobs_computed, 1u);
  EXPECT_EQ(stats.of(ScenarioKind::kStatic).replicas_run, 2u);
  EXPECT_EQ(stats.of(ScenarioKind::kDvfs).replicas_run, 2u);
  EXPECT_EQ(stats.of(ScenarioKind::kFleet).replicas_run, 3u);
  // Aggregates stay the sums (compatibility with the historical fields).
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.jobs_computed, 3u);
  EXPECT_EQ(stats.replicas_run, 7u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

// --- scenario registry ------------------------------------------------------

TEST(Scenario, RegistryNamesRoundTrip) {
  for (const auto kind : kAllScenarioKinds) {
    ScenarioKind parsed;
    ASSERT_TRUE(parse_scenario_kind(name(kind), parsed));
    EXPECT_EQ(parsed, kind);
    EXPECT_EQ(scenario_kind_info(kind).kind, kind);
  }
  ScenarioKind alias;
  ASSERT_TRUE(parse_scenario_kind("experiment", alias));
  EXPECT_EQ(alias, ScenarioKind::kStatic);
  ScenarioKind unknown;
  EXPECT_FALSE(parse_scenario_kind("warp-drive", unknown));
}

TEST(Scenario, AccessorsThrowOnKindMismatch) {
  const ScenarioConfig config{small_dvfs()};
  EXPECT_EQ(config.kind(), ScenarioKind::kDvfs);
  EXPECT_NO_THROW((void)config.dvfs());
  EXPECT_THROW((void)config.fleet(), std::logic_error);
  EXPECT_THROW((void)config.static_config(), std::logic_error);
  EXPECT_EQ(config.experiment().n, 64u);

  const ScenarioResult empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW((void)empty.static_result(), std::logic_error);
}

TEST(Scenario, RunScenarioMatchesSerialReference) {
  const DvfsConfig config = small_dvfs();
  const ScenarioResult result = run_scenario(ScenarioConfig(config));
  const DvfsResult serial = run_dvfs(config);
  EXPECT_DOUBLE_EQ(result.dvfs().energy_j, serial.energy_j);
  EXPECT_DOUBLE_EQ(result.dvfs().completion_s, serial.completion_s);
}

}  // namespace
}  // namespace gpupower::core
