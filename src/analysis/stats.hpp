// Summary statistics for repeated measurements (the paper averages every
// configuration over 10 seeds and reports means; error bars are standard
// deviations).
#pragma once

#include <cstddef>
#include <span>

namespace gpupower::analysis {

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Half-width of the 95% confidence interval on the mean, using the
  /// Student-t critical value for the sample size (the paper's 10-seed
  /// protocol sits deep in the small-n regime where the normal 1.96 is
  /// ~13% too narrow).
  [[nodiscard]] double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided 95% Student-t critical value for a sample of n observations
/// (n - 1 degrees of freedom).  Tabulated for n <= 30; larger samples fall
/// back to the normal 1.96.  Returns 0 for n < 2 (no interval exists).
[[nodiscard]] double t_critical_95(std::size_t n) noexcept;

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;
[[nodiscard]] double median(std::span<const double> xs);

}  // namespace gpupower::analysis
