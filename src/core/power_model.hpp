// Input-dependent GPU power model (the Section V "future work" the paper
// sketches): predict GEMM power from cheap, O(N^2) statistics of the input
// data — no kernel walk required.  The model is linear in the features and
// is fit by ordinary least squares on simulated (or measured) samples.
#pragma once

#include <array>
#include <span>

#include "gemm/matrix.hpp"
#include "numeric/dtype.hpp"

namespace gpupower::core {

/// Cheap input statistics: one pass over each operand matrix.
struct DataFeatures {
  static constexpr std::size_t kCount = 6;

  double weight_fraction = 0.0;   ///< avg Hamming weight / width, A and B
  double neighbor_toggles = 0.0;  ///< avg row-consecutive Hamming distance / width
  double alignment = 0.0;         ///< avg elementwise A/B bit alignment
  double zero_fraction = 0.0;     ///< fraction of exactly-zero elements
  double significand_activity = 0.0;  ///< mean popcount product of significands / width^2
  double exponent_weight = 0.0;   ///< avg exponent-field popcount / width (FP), 0 INT8

  [[nodiscard]] std::array<double, kCount> vector() const noexcept {
    return {weight_fraction, neighbor_toggles,      alignment,
            zero_fraction,   significand_activity,  exponent_weight};
  }
};

/// Extracts features from typed operand matrices.
template <typename T>
[[nodiscard]] DataFeatures extract_features(const gemm::Matrix<T>& a,
                                            const gemm::Matrix<T>& b);

extern template DataFeatures extract_features<float>(const gemm::Matrix<float>&,
                                                     const gemm::Matrix<float>&);
extern template DataFeatures extract_features<gpupower::numeric::float16_t>(
    const gemm::Matrix<gpupower::numeric::float16_t>&,
    const gemm::Matrix<gpupower::numeric::float16_t>&);
extern template DataFeatures extract_features<gpupower::numeric::int8_value_t>(
    const gemm::Matrix<gpupower::numeric::int8_value_t>&,
    const gemm::Matrix<gpupower::numeric::int8_value_t>&);

/// One training sample: features plus the observed power.
struct PowerSample {
  DataFeatures features;
  double power_w = 0.0;
};

/// Linear model power = intercept + w . features, fit by least squares.
class InputDependentPowerModel {
 public:
  /// Fits on the samples (normal equations with ridge damping for
  /// ill-conditioned feature sets).  Requires at least kCount + 1 samples.
  [[nodiscard]] static InputDependentPowerModel fit(
      std::span<const PowerSample> samples, double ridge = 1e-6);

  [[nodiscard]] double predict(const DataFeatures& f) const noexcept;

  /// Coefficient of determination on a sample set.
  [[nodiscard]] double r2(std::span<const PowerSample> samples) const;

  [[nodiscard]] double intercept() const noexcept { return intercept_; }
  [[nodiscard]] const std::array<double, DataFeatures::kCount>& weights()
      const noexcept {
    return weights_;
  }

 private:
  double intercept_ = 0.0;
  std::array<double, DataFeatures::kCount> weights_{};
};

}  // namespace gpupower::core
