#include "analysis/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace gpupower::analysis {

JsonValue JsonValue::number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::integer(long long v) {
  JsonValue j;
  j.kind_ = Kind::kInteger;
  j.integer_ = v;
  return j;
}

JsonValue JsonValue::boolean(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::string(std::string_view v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_.assign(v);
  return j;
}

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::object() {
  JsonValue j;
  j.kind_ = Kind::kObject;
  return j;
}

JsonValue JsonValue::array() {
  JsonValue j;
  j.kind_ = Kind::kArray;
  return j;
}

JsonValue& JsonValue::set(std::string_view key, JsonValue value) {
  assert(kind_ == Kind::kObject);
  members_.emplace_back(std::string(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  assert(kind_ == Kind::kArray);
  items_.push_back(std::move(value));
  return *this;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonValue::write(std::string& out, bool pretty, int depth) const {
  const std::string indent = pretty ? std::string(2 * (depth + 1), ' ') : "";
  const std::string closing = pretty ? std::string(2 * depth, ' ') : "";
  const char* nl = pretty ? "\n" : "";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInteger: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", integer_);
      out += buf;
      return;
    }
    case Kind::kNumber: {
      if (!std::isfinite(number_)) {
        out += "null";  // JSON has no Inf/NaN
        return;
      }
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.10g", number_);
      out += buf;
      return;
    }
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += indent;
        items_[i].write(out, pretty, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += closing;
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += indent;
        out += '"';
        out += json_escape(members_[i].first);
        out += pretty ? "\": " : "\":";
        members_[i].second.write(out, pretty, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += closing;
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump(bool pretty) const {
  std::string out;
  write(out, pretty, 0);
  return out;
}

}  // namespace gpupower::analysis
