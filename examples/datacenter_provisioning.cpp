// Datacenter provisioning with input-dependent power models: power is
// provisioned per worst case (a DGX-H100 node reserves 10 kW for 8 GPUs),
// but the paper shows the *input data* moves per-GPU draw by tens of watts.
// This example runs the input-dependent power model across the four
// simulated GPUs and three workload input profiles, and reports how much
// provisioning headroom an input-aware scheduler could reclaim per GPU and
// per 1000-GPU cluster.
//
//   ./build/examples/datacenter_provisioning
#include <cstdio>
#include <iostream>

#include "analysis/table.hpp"
#include "core/env.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"

int main() {
  using namespace gpupower;

  const core::BenchEnv env = core::read_bench_env();
  std::printf(
      "Input-aware power provisioning (FP16-T GEMM, %zux%zu, %d seeds)\n\n",
      env.n, env.n, env.seeds);

  struct Profile {
    const char* name;
    core::PatternSpec spec;
  };
  std::vector<Profile> profiles;
  profiles.push_back({"adversarial (random bits)", [] {
                        core::PatternSpec s = core::baseline_gaussian_spec();
                        s.bitop = core::PatternSpec::BitOp::kRandomizeLow;
                        s.bit_fraction = 1.0;
                        return s;
                      }()});
  profiles.push_back({"typical (gaussian)", core::baseline_gaussian_spec()});
  profiles.push_back({"curated (sorted + 50% sparse)", [] {
                        core::PatternSpec s = core::baseline_gaussian_spec();
                        s.place = core::PatternSpec::Place::kSortRows;
                        s.sort_percent = 100.0;
                        s.sparsity = 0.5;
                        return s;
                      }()});

  for (const auto gpu :
       {gpusim::GpuModel::kA100PCIe, gpusim::GpuModel::kH100SXM,
        gpusim::GpuModel::kV100SXM2, gpusim::GpuModel::kRTX6000}) {
    const auto& dev = gpusim::device(gpu);
    analysis::Table table({"input profile", "power (W)", "vs TDP"});
    double worst = 0.0;
    double best = 1e30;
    for (const auto& profile : profiles) {
      core::ExperimentConfig config;
      config.gpu = gpu;
      config.dtype = numeric::DType::kFP16T;
      config.pattern = profile.spec;
      env.apply(config);
      const auto result = core::run_experiment(config);
      worst = std::max(worst, result.power_w);
      best = std::min(best, result.power_w);
      table.add_row({profile.name, analysis::fixed(result.power_w, 1),
                     analysis::fixed(100.0 * result.power_w / dev.tdp_w, 1) +
                         " %"});
    }
    std::printf("--- %s (TDP %.0f W) ---\n", std::string(dev.name).c_str(),
                dev.tdp_w);
    table.print(std::cout);
    std::printf(
        "input-dependent swing: %.1f W/GPU => %.1f kW reclaimable per 1000 "
        "GPUs\n\n",
        worst - best, (worst - best));
  }
  std::printf(
      "A scheduler that knows its tenants' input statistics can provision\n"
      "against profile-specific peaks instead of a single worst case.\n");
  return 0;
}
