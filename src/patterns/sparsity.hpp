// Value-level sparsity transforms for Section IV-D (Figs. 6a and 6b).
// Bit-level "sparsity" (zeroing LSBs/MSBs, Figs. 6c/6d) lives in bitops.hpp
// because it acts on the target datatype's storage bits.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace gpupower::patterns {

/// Zeroes a uniformly random `fraction` of the elements (Fig. 6a).  The
/// number of zeroed positions is round(fraction * size); positions are drawn
/// without replacement so the realised sparsity is exact.
void sparsify(std::vector<float>& data, double fraction, std::uint64_t seed);

/// Fig. 6b helper: fully sorts the buffer ascending and then applies random
/// sparsity, destroying the value locality the sort created.
void sparsify_after_sort(std::vector<float>& data, double fraction,
                         std::uint64_t seed);

/// Structured 2:4 sparsity (NVIDIA sparse-tensor-core format): within every
/// group of four consecutive elements, zero the two smallest magnitudes.
/// Used by the power-aware sparsity designer (Section V future work).
void sparsify_2_4(std::vector<float>& data);

/// Fraction of exactly-zero elements.
[[nodiscard]] double measured_sparsity(const std::vector<float>& data);

}  // namespace gpupower::patterns
