// Persistent result store suite: codec round-trips that reproduce every
// kind bit-identically, the on-disk entry contract (atomic writes, key
// verification, corruption = miss), and the engine integration — store
// hits skip computation entirely, two engines share one directory, and a
// cache-less engine bypasses the store by contract.
#include "core/store/result_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/json.hpp"
#include "core/config_builder.hpp"
#include "core/engine.hpp"
#include "core/figures.hpp"
#include "gpusim/dvfs/timeline.hpp"

namespace gpupower::core {
namespace {

namespace fs = std::filesystem;

// --- shared fixtures ------------------------------------------------------

ExperimentConfig small_static_config() {
  ExperimentConfig config;
  config.dtype = numeric::DType::kFP16;
  config.n = 64;
  config.seeds = 2;
  config.sampling = gpusim::SamplingPlan::fast(6, 0.5);
  config.pattern = baseline_gaussian_spec();
  return config;
}

DvfsConfig small_dvfs_config() {
  DvfsConfig config;
  config.experiment = small_static_config();
  config.slice_s = 0.01;
  config.pstates = 5;
  config.governor.policy = gpusim::dvfs::GovernorConfig::Policy::kUtilization;
  config.timeline =
      gpusim::dvfs::parse_timeline(
          "burst(period=0.1, duty=30%, high=1, low=10%, dur=0.3)")
          .timeline;
  return config;
}

FleetConfig small_fleet_config() {
  FleetConfigBuilder builder;
  builder.experiment(small_static_config())
      .add_timeline("burst(period=0.1, duty=30%, dur=0.3)")
      .add_device(gpusim::GpuModel::kA100PCIe,
                  "utilization(up=80%, down=30%)")
      .add_device(gpusim::GpuModel::kA100PCIe, "fixed(2)", /*timeline=*/0,
                  /*priority=*/2)
      .allocator("proportional")
      .cap(400.0)
      .slice(0.01)
      .pstates(5);
  return builder.build();
}

std::vector<ScenarioConfig> all_kind_configs() {
  return {ScenarioConfig(small_static_config()),
          ScenarioConfig(small_dvfs_config()),
          ScenarioConfig(small_fleet_config())};
}

/// RAII temp directory for store tests.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("gpupower_test_" + tag + "_" +
                std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
                "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this))))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// --- result codecs --------------------------------------------------------

// The store's correctness rests on this: every kind's result must survive
// JSON and come back bit-identical (canonical dump equality covers every
// field, including the full time-resolved traces).
TEST(ResultCodec, EveryKindRoundTripsBitIdentically) {
  for (const ScenarioConfig& config : all_kind_configs()) {
    const ScenarioResult original = run_scenario(config);
    const analysis::JsonValue doc = scenario_result_to_json(original);

    ScenarioResult decoded;
    std::string error;
    ASSERT_TRUE(scenario_result_from_json(config.kind(), doc, decoded, error))
        << name(config.kind()) << ": " << error;
    EXPECT_EQ(decoded.kind(), config.kind());
    EXPECT_EQ(scenario_result_to_json(decoded).dump(), doc.dump())
        << name(config.kind());

    // ...and through a textual round trip (what the disk actually holds).
    const auto reparsed = analysis::json_parse(doc.dump());
    ASSERT_TRUE(reparsed.ok) << reparsed.error;
    ScenarioResult redecoded;
    ASSERT_TRUE(scenario_result_from_json(config.kind(), reparsed.value,
                                          redecoded, error))
        << error;
    EXPECT_EQ(scenario_result_to_json(redecoded).dump(), doc.dump());
  }
}

TEST(ResultCodec, RejectsWrongKindDocument) {
  const ScenarioResult result =
      run_scenario(ScenarioConfig(small_static_config()));
  const analysis::JsonValue doc = scenario_result_to_json(result);
  ScenarioResult decoded;
  std::string error;
  EXPECT_FALSE(
      scenario_result_from_json(ScenarioKind::kFleet, doc, decoded, error));
  EXPECT_FALSE(error.empty());
}

// --- atomic_write_text ----------------------------------------------------

TEST(AtomicWrite, WritesAndReplacesWithoutTempLeftovers) {
  TempDir dir("atomic");
  const std::string path = dir.path() + "/nested/out.json";

  ASSERT_TRUE(atomic_write_text(path, "first\n"));  // creates parent dirs
  ASSERT_TRUE(atomic_write_text(path, "second\n"));

  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "second\n");

  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path() + "/nested")) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);  // no .tmp litter
}

TEST(AtomicWrite, ReportsUnwritableTarget) {
  std::string error;
  EXPECT_FALSE(atomic_write_text("/proc/definitely/not/writable", "x",
                                 &error));
  EXPECT_FALSE(error.empty());
}

// --- ResultStore on-disk contract -----------------------------------------

TEST(ResultStore, SaveLoadRoundTripsEveryKind) {
  TempDir dir("roundtrip");
  const ResultStore store(StoreOptions{dir.path()});
  ASSERT_TRUE(store.enabled());

  for (const ScenarioConfig& config : all_kind_configs()) {
    const std::string key = canonical_scenario_key(config);
    const ScenarioResult original = run_scenario(config);
    ASSERT_TRUE(store.save(key, original)) << name(config.kind());

    ScenarioResult loaded;
    ASSERT_TRUE(store.load(key, config.kind(), loaded)) << name(config.kind());
    EXPECT_EQ(scenario_result_to_json(loaded).dump(),
              scenario_result_to_json(original).dump());
  }
}

TEST(ResultStore, DisabledStoreMissesAndRefusesWrites) {
  const ResultStore store;
  EXPECT_FALSE(store.enabled());
  const ScenarioConfig config(small_static_config());
  EXPECT_FALSE(store.save(canonical_scenario_key(config),
                          run_scenario(config)));
  ScenarioResult out;
  EXPECT_FALSE(store.load(canonical_scenario_key(config),
                          ScenarioKind::kStatic, out));
}

TEST(ResultStore, MissingEntryIsAMiss) {
  TempDir dir("missing");
  const ResultStore store(StoreOptions{dir.path()});
  ScenarioResult out;
  EXPECT_FALSE(store.load("no such key", ScenarioKind::kStatic, out));
}

// A store directory shared with a hostile filesystem: truncated entries,
// garbage, wrong schema, and key collisions must all degrade to a miss —
// never to a crash or a wrong result.
TEST(ResultStore, CorruptEntriesAreMissesNeverCrashes) {
  TempDir dir("corrupt");
  const ResultStore store(StoreOptions{dir.path()});
  const ScenarioConfig config(small_static_config());
  const std::string key = canonical_scenario_key(config);
  ASSERT_TRUE(store.save(key, run_scenario(config)));
  const std::string path = store.entry_path(key);

  const auto overwrite = [&](const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  };

  // Truncated JSON.
  {
    std::ifstream in(path);
    std::string full((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    overwrite(full.substr(0, full.size() / 2));
  }
  ScenarioResult out;
  EXPECT_FALSE(store.load(key, ScenarioKind::kStatic, out));

  overwrite("complete garbage, not even JSON");
  EXPECT_FALSE(store.load(key, ScenarioKind::kStatic, out));

  overwrite("{\"gpupower_store\": 999, \"kind\": \"static\", \"key\": \"" +
            key + "\", \"result\": {}}");
  EXPECT_FALSE(store.load(key, ScenarioKind::kStatic, out));

  // An entry carrying a different canonical key (filename-hash collision).
  overwrite(
      "{\"gpupower_store\": 1, \"kind\": \"static\", \"key\": \"other\", "
      "\"result\": {}}");
  EXPECT_FALSE(store.load(key, ScenarioKind::kStatic, out));

  // And a fresh save repairs the entry.
  ASSERT_TRUE(store.save(key, run_scenario(config)));
  EXPECT_TRUE(store.load(key, ScenarioKind::kStatic, out));
}

// Orphaned writer temp files (a writer killed between create and rename)
// are swept when a store opens on the directory — but only old ones; a
// fresh temp file could be a live writer mid-save.
TEST(ResultStore, CompactSweepsOnlyAgedOrphanTempFiles) {
  TempDir dir("compact");
  const ScenarioConfig config(small_static_config());
  const std::string key = canonical_scenario_key(config);
  {
    const ResultStore store(StoreOptions{dir.path()});
    ASSERT_TRUE(store.save(key, run_scenario(config)));
  }

  // Plant litter: two orphans from a "crashed writer", one fresh temp
  // file (in-flight), and one unrelated file the sweep must not touch.
  const std::string entry = dir.path() + "/deadbeefdeadbeef.json";
  const auto plant = [](const std::string& path) {
    std::ofstream out(path);
    out << "partial";
  };
  const std::string old_orphan1 = entry + ".tmp.12345.0";
  const std::string old_orphan2 = entry + ".tmp.12345.1";
  const std::string fresh_tmp = entry + ".tmp.12345.2";
  const std::string unrelated = dir.path() + "/README";
  plant(old_orphan1);
  plant(old_orphan2);
  plant(fresh_tmp);
  plant(unrelated);
  const auto old_time =
      fs::file_time_type::clock::now() - std::chrono::hours(1);
  fs::last_write_time(old_orphan1, old_time);
  fs::last_write_time(old_orphan2, old_time);

  // Opening the store runs the sweep automatically.
  const ResultStore reopened(StoreOptions{dir.path()});
  EXPECT_FALSE(fs::exists(old_orphan1));
  EXPECT_FALSE(fs::exists(old_orphan2));
  EXPECT_TRUE(fs::exists(fresh_tmp));   // could be a live writer
  EXPECT_TRUE(fs::exists(unrelated));   // not a temp file: not ours
  EXPECT_TRUE(fs::exists(reopened.entry_path(key)));

  // An explicit zero-age sweep takes the fresh temp file too.
  EXPECT_EQ(reopened.compact(std::chrono::seconds(0)), 1u);
  EXPECT_FALSE(fs::exists(fresh_tmp));

  // The surviving entry still loads.
  ScenarioResult out;
  EXPECT_TRUE(reopened.load(key, ScenarioKind::kStatic, out));
}

TEST(ResultStore, EvictSweepsOldestEntriesDownToTheByteBudget) {
  TempDir dir("evict");
  fs::create_directories(dir.path());
  // Three 100-byte entries with distinct ages, plus writer litter and an
  // unrelated file that the size sweep must never touch.
  const auto plant = [&](const std::string& name, std::chrono::hours age) {
    const std::string path = dir.path() + "/" + name;
    std::ofstream out(path);
    out << std::string(100, 'x');
    out.close();
    fs::last_write_time(path, fs::file_time_type::clock::now() - age);
    return path;
  };
  const std::string oldest = plant("aaaaaaaaaaaaaaaa.json",
                                   std::chrono::hours(3));
  const std::string middle = plant("bbbbbbbbbbbbbbbb.json",
                                   std::chrono::hours(2));
  const std::string newest = plant("cccccccccccccccc.json",
                                   std::chrono::hours(1));
  const std::string litter = plant("dddddddddddddddd.json.tmp.12345.7",
                                   std::chrono::hours(0));
  const std::string unrelated = plant("README", std::chrono::hours(3));

  // Opening with a 250-byte budget sweeps exactly the oldest entry
  // (300 bytes of entries -> 200).
  const ResultStore store(StoreOptions{dir.path(), 250});
  EXPECT_FALSE(fs::exists(oldest));
  EXPECT_TRUE(fs::exists(middle));
  EXPECT_TRUE(fs::exists(newest));
  EXPECT_TRUE(fs::exists(litter));     // compact()'s business, not evict's
  EXPECT_TRUE(fs::exists(unrelated));  // not an entry: not ours

  // A store within budget evicts nothing.
  EXPECT_EQ(store.evict(200), 0u);
  // A zero budget clears every entry, oldest first.
  EXPECT_EQ(store.evict(0), 2u);
  EXPECT_FALSE(fs::exists(middle));
  EXPECT_FALSE(fs::exists(newest));
  EXPECT_TRUE(fs::exists(unrelated));
}

TEST(ResultStore, EvictedEntryIsAMissAndRecomputesThroughTheEngine) {
  TempDir dir("evictmiss");
  const ScenarioConfig config(small_static_config());
  const std::string key = canonical_scenario_key(config);
  const ScenarioResult reference = run_scenario(config);
  {
    const ResultStore store(StoreOptions{dir.path()});
    ASSERT_TRUE(store.save(key, reference));
  }
  // Reopen under a budget too small for the entry: it is evicted, the
  // lookup misses, and a save rewrites it.
  const ResultStore store(StoreOptions{dir.path(), 1});
  ScenarioResult out;
  EXPECT_FALSE(store.load(key, ScenarioKind::kStatic, out));
  ASSERT_TRUE(store.save(key, reference));
  EXPECT_TRUE(store.load(key, ScenarioKind::kStatic, out));
  EXPECT_EQ(scenario_result_to_json(out).dump(),
            scenario_result_to_json(reference).dump());
}

TEST(ResultStore, CompactOnMissingDirectoryIsANoOp) {
  const ResultStore store(StoreOptions{"/tmp/gpupower_never_created_dir_x"});
  EXPECT_EQ(store.compact(std::chrono::seconds(0)), 0u);
}

TEST(ResultStore, FilenameIsStableFnvHash) {
  const ResultStore store(StoreOptions{"/some/dir"});
  const std::string path = store.entry_path("key");
  char expect[32];
  std::snprintf(expect, sizeof expect, "%016llx",
                static_cast<unsigned long long>(fnv1a64("key")));
  EXPECT_EQ(path, std::string("/some/dir/") + expect + ".json");
  // FNV-1a 64 of the empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
}

// --- engine integration ---------------------------------------------------

EngineOptions store_engine(const std::string& dir, int workers = 4) {
  EngineOptions options;
  options.workers = workers;
  options.store = std::make_shared<ResultStore>(StoreOptions{dir});
  return options;
}

// The tentpole acceptance: a second engine over the same directory replays
// the whole batch from disk — zero replicas computed — and the results are
// bit-identical to the originals.
TEST(EngineStore, SecondEngineReplaysFromDiskBitIdentically) {
  TempDir dir("replay");
  const auto configs = all_kind_configs();

  std::vector<std::string> cold_dumps;
  {
    ExperimentEngine cold(store_engine(dir.path()));
    std::vector<ScenarioHandle> handles;
    for (const auto& config : configs) handles.push_back(cold.submit(config));
    cold.wait_all();
    for (const auto& handle : handles) {
      cold_dumps.push_back(scenario_result_to_json(handle.get()).dump());
    }
    const EngineStats stats = cold.stats();
    EXPECT_EQ(stats.jobs_computed, configs.size());
    EXPECT_EQ(stats.store_writes, configs.size());
    EXPECT_EQ(stats.store_hits, 0u);
  }

  ExperimentEngine warm(store_engine(dir.path()));
  std::vector<ScenarioHandle> handles;
  for (const auto& config : configs) handles.push_back(warm.submit(config));
  warm.wait_all();

  const EngineStats stats = warm.stats();
  EXPECT_EQ(stats.store_hits, configs.size());
  EXPECT_EQ(stats.jobs_computed, 0u);
  EXPECT_EQ(stats.replicas_run, 0u);
  EXPECT_EQ(stats.store_writes, 0u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(scenario_result_to_json(handles[i].get()).dump(),
              cold_dumps[i]);
    const auto kind = configs[i].kind();
    EXPECT_EQ(stats.of(kind).store_hits, 1u) << name(kind);
  }
}

// Concurrent identical submissions from many threads dedup onto one
// computation (and one store write) — the serve-mode cross-client
// guarantee.
TEST(EngineStore, ConcurrentIdenticalSubmitsComputeOnce) {
  TempDir dir("concurrent");
  ExperimentEngine engine(store_engine(dir.path()));
  const ScenarioConfig config(small_static_config());

  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&engine, &config] {
      const ScenarioHandle handle = engine.submit(config);
      (void)handle.get();
    });
  }
  for (std::thread& thread : threads) thread.join();
  engine.wait_all();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.jobs_computed + stats.store_hits, 1u);
  EXPECT_EQ(stats.replicas_run,
            stats.jobs_computed * static_cast<std::uint64_t>(
                                      small_static_config().seeds));
  EXPECT_EQ(stats.cache_hits, 7u);
}

// Disabling the cache disables the store with it: a cache-less engine
// recomputes by contract, so serving stale disk results would violate it.
TEST(EngineStore, CachelessEngineBypassesTheStore) {
  TempDir dir("cacheless");
  {
    ExperimentEngine seeder(store_engine(dir.path()));
    (void)seeder.submit(ScenarioConfig(small_static_config())).get();
  }

  EngineOptions options = store_engine(dir.path());
  options.cache_enabled = false;
  ExperimentEngine engine(options);
  (void)engine.submit(ScenarioConfig(small_static_config())).get();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.store_hits, 0u);
  EXPECT_EQ(stats.jobs_computed, 1u);
  EXPECT_EQ(stats.store_writes, 0u);
}

// A poisoned entry under a live engine: the load fails, the engine
// recomputes and rewrites a good entry.
TEST(EngineStore, CorruptEntryRecomputesAndRepairs) {
  TempDir dir("repair");
  const ScenarioConfig config(small_static_config());
  const std::string key = canonical_scenario_key(config);
  const ResultStore store(StoreOptions{dir.path()});
  {
    ExperimentEngine seeder(store_engine(dir.path()));
    (void)seeder.submit(config).get();
  }
  {
    std::ofstream out(store.entry_path(key), std::ios::trunc);
    out << "{\"gpupower_store\": 1, broken";
  }

  ExperimentEngine engine(store_engine(dir.path()));
  (void)engine.submit(config).get();
  engine.wait_all();  // wait_all implies the write-back is on disk
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.store_hits, 0u);
  EXPECT_EQ(stats.jobs_computed, 1u);
  EXPECT_EQ(stats.store_writes, 1u);

  ScenarioResult repaired;
  EXPECT_TRUE(store.load(key, ScenarioKind::kStatic, repaired));
}

// The stats line mentions store traffic only when it happened, so
// store-less output is byte-stable for existing consumers.
TEST(EngineStore, StatsLineAppendsStoreCountersOnlyWhenUsed) {
  ExperimentEngine plain(EngineOptions::with_workers(2));
  (void)plain.submit(ScenarioConfig(small_static_config())).get();
  EXPECT_EQ(engine_stats_line(plain).find("store"), std::string::npos);

  TempDir dir("statsline");
  ExperimentEngine stored(store_engine(dir.path()));
  (void)stored.submit(ScenarioConfig(small_static_config())).get();
  stored.wait_all();
  const std::string line = engine_stats_line(stored);
  EXPECT_NE(line.find("1 store write(s)"), std::string::npos) << line;
}

}  // namespace
}  // namespace gpupower::core
