#include "patterns/bitops.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "numeric/float16.hpp"
#include "numeric/int8.hpp"

namespace gpupower::patterns {
namespace {

using gpupower::numeric::float16_t;
using gpupower::numeric::int8_value_t;
using gpupower::numeric::scalar_traits;

template <typename T>
class BitOpsTyped : public ::testing::Test {};

using ElementTypes = ::testing::Types<float, float16_t, int8_value_t>;
TYPED_TEST_SUITE(BitOpsTyped, ElementTypes);

template <typename T>
std::vector<T> constant_buffer(std::size_t count) {
  using traits = scalar_traits<T>;
  // A mid-range bit pattern so both set and clear bits exist.
  const auto bits = static_cast<typename traits::bits_type>(
      0x5A5A5A5Au & gpupower::numeric::low_mask<std::uint32_t>(traits::kBits));
  return std::vector<T>(count, traits::from_bits(bits));
}

TYPED_TEST(BitOpsTyped, FlipRandomFlipsExactCount) {
  using traits = scalar_traits<TypeParam>;
  auto data = constant_buffer<TypeParam>(200);
  const auto reference = data[0];
  flip_random_bits<TypeParam>(data, 3, 42);
  for (const auto& v : data) {
    EXPECT_EQ(gpupower::numeric::hamming_distance(
                  static_cast<std::uint32_t>(traits::to_bits(v)),
                  static_cast<std::uint32_t>(traits::to_bits(reference))),
              3);
  }
}

TYPED_TEST(BitOpsTyped, FlipZeroIsIdentity) {
  auto data = constant_buffer<TypeParam>(50);
  const auto original = data;
  flip_random_bits<TypeParam>(data, 0, 42);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(scalar_traits<TypeParam>::to_bits(data[i]),
              scalar_traits<TypeParam>::to_bits(original[i]));
  }
}

TYPED_TEST(BitOpsTyped, FlipFullWidthComplements) {
  using traits = scalar_traits<TypeParam>;
  auto data = constant_buffer<TypeParam>(20);
  const auto before = traits::to_bits(data[0]);
  flip_random_bits<TypeParam>(data, traits::kBits, 42);
  const auto mask = gpupower::numeric::low_mask<std::uint32_t>(traits::kBits);
  for (const auto& v : data) {
    EXPECT_EQ(static_cast<std::uint32_t>(traits::to_bits(v)),
              (~static_cast<std::uint32_t>(before)) & mask);
  }
}

TYPED_TEST(BitOpsTyped, RandomizeLowLeavesHighBits) {
  using traits = scalar_traits<TypeParam>;
  auto data = constant_buffer<TypeParam>(200);
  const auto before = static_cast<std::uint32_t>(traits::to_bits(data[0]));
  const int low = traits::kBits / 2;
  randomize_low_bits<TypeParam>(data, low, 42);
  const auto high_mask =
      ~gpupower::numeric::low_mask<std::uint32_t>(low) &
      gpupower::numeric::low_mask<std::uint32_t>(traits::kBits);
  bool any_low_changed = false;
  for (const auto& v : data) {
    const auto bits = static_cast<std::uint32_t>(traits::to_bits(v));
    EXPECT_EQ(bits & high_mask, before & high_mask);
    if ((bits ^ before) & ~high_mask) any_low_changed = true;
  }
  EXPECT_TRUE(any_low_changed);
}

TYPED_TEST(BitOpsTyped, RandomizeHighLeavesLowBits) {
  using traits = scalar_traits<TypeParam>;
  auto data = constant_buffer<TypeParam>(200);
  const auto before = static_cast<std::uint32_t>(traits::to_bits(data[0]));
  const int high = traits::kBits / 4;
  randomize_high_bits<TypeParam>(data, high, 42);
  const auto low_mask32 =
      gpupower::numeric::low_mask<std::uint32_t>(traits::kBits - high);
  bool any_high_changed = false;
  for (const auto& v : data) {
    const auto bits = static_cast<std::uint32_t>(traits::to_bits(v));
    EXPECT_EQ(bits & low_mask32, before & low_mask32);
    if ((bits ^ before) & ~low_mask32) any_high_changed = true;
  }
  EXPECT_TRUE(any_high_changed);
}

TYPED_TEST(BitOpsTyped, ZeroLowClearsExactBits) {
  using traits = scalar_traits<TypeParam>;
  auto data = constant_buffer<TypeParam>(50);
  const auto before = static_cast<std::uint32_t>(traits::to_bits(data[0]));
  const int low = traits::kBits / 2;
  zero_low_bits<TypeParam>(data, low);
  const auto cleared = gpupower::numeric::low_mask<std::uint32_t>(low);
  for (const auto& v : data) {
    const auto bits = static_cast<std::uint32_t>(traits::to_bits(v));
    EXPECT_EQ(bits & cleared, 0u);
    EXPECT_EQ(bits & ~cleared, before & ~cleared);
  }
}

TYPED_TEST(BitOpsTyped, ZeroHighFullWidthZeroesValue) {
  using traits = scalar_traits<TypeParam>;
  auto data = constant_buffer<TypeParam>(50);
  zero_high_bits<TypeParam>(data, traits::kBits);
  for (const auto& v : data) EXPECT_EQ(traits::to_bits(v), 0u);
}

TEST(BitOps, ZeroHighOnFloat16ClearsSignAndExponent) {
  std::vector<float16_t> data{float16_t(-2.5f)};
  zero_high_bits<float16_t>(data, 6);  // sign + 5 exponent bits
  EXPECT_EQ(data[0].bits() & 0xFC00u, 0u);
}

TEST(BitOps, RandomizationIsSeedDeterministic) {
  auto a = constant_buffer<float16_t>(100);
  auto b = constant_buffer<float16_t>(100);
  randomize_low_bits<float16_t>(a, 8, 42);
  randomize_low_bits<float16_t>(b, 8, 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bits(), b[i].bits());
  }
  auto c = constant_buffer<float16_t>(100);
  randomize_low_bits<float16_t>(c, 8, 43);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].bits() != c[i].bits()) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace gpupower::patterns
