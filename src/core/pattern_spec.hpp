// PatternSpec: a declarative description of one experiment's input data —
// value distribution, placement, sparsity, and bit-level transform — plus
// the builder that turns a spec into typed A/B matrices following the
// paper's protocol (Section III): FP32 generation, per-datatype conversion,
// A and B sharing the pattern under different seeds, B transposed unless
// the experiment says otherwise.
#pragma once

#include <cstdint>
#include <string>

#include "gemm/matrix.hpp"
#include "gemm/problem.hpp"
#include "numeric/dtype.hpp"

namespace gpupower::core {

struct PatternSpec {
  enum class Value { kGaussian, kValueSet, kConstant };
  Value value = Value::kGaussian;
  /// Gaussian mean in the FP domain; INT8 runs scale it by 25/210 to stay
  /// within the representable range (paper Section III).
  double mean = 0.0;
  /// Gaussian sigma in the FP domain; negative selects the paper default
  /// (210 FP / 25 INT8).
  double sigma = -1.0;
  /// For Value::kValueSet: number of unique values drawn (Fig. 3c).
  std::size_t set_size = 8;

  enum class Place {
    kNone,
    kSortRows,        ///< Fig. 5a/5b
    kSortColumns,     ///< Fig. 5c
    kSortWithinRows,  ///< Fig. 5d
    kFullSort,        ///< Fig. 6b precondition
  };
  Place place = Place::kNone;
  double sort_percent = 0.0;  ///< partial-sort percentage (Fig. 5 x-axis)

  /// Random value sparsity in [0, 1] (Figs. 6a/6b), applied after placement.
  double sparsity = 0.0;

  enum class BitOp {
    kNone,
    kFlipRandom,     ///< Fig. 4a
    kRandomizeLow,   ///< Fig. 4b
    kRandomizeHigh,  ///< Fig. 4c
    kZeroLow,        ///< Fig. 6c
    kZeroHigh,       ///< Fig. 6d
  };
  BitOp bitop = BitOp::kNone;
  /// Fraction of the target datatype's width the bit op touches, so one
  /// spec spans FP32/FP16/INT8 widths uniformly.
  double bit_fraction = 0.0;

  /// B consumed transposed (paper default).  Fig. 5a/5c run untransposed.
  bool transpose_b = true;

  [[nodiscard]] std::string describe() const;
};

/// Typed experiment inputs plus the Fig. 8 input statistics.
template <typename T>
struct ExperimentInputs {
  gemm::Matrix<T> a;
  gemm::Matrix<T> b;          ///< storage; consumed per spec.transpose_b
  double alignment = 0.0;     ///< avg elementwise bit alignment A vs B
  double weight_fraction = 0.0;  ///< avg Hamming weight of A / width
};

/// Materialises one seed replica of a spec for an n x n GEMM.  A and B use
/// streams derived from `seed` so they never share randomness.
template <typename T>
[[nodiscard]] ExperimentInputs<T> build_inputs(const PatternSpec& spec,
                                               gpupower::numeric::DType dtype,
                                               std::size_t n,
                                               std::uint64_t seed);

extern template ExperimentInputs<float> build_inputs<float>(
    const PatternSpec&, gpupower::numeric::DType, std::size_t, std::uint64_t);
extern template ExperimentInputs<gpupower::numeric::float16_t>
build_inputs<gpupower::numeric::float16_t>(const PatternSpec&,
                                           gpupower::numeric::DType,
                                           std::size_t, std::uint64_t);
extern template ExperimentInputs<gpupower::numeric::int8_value_t>
build_inputs<gpupower::numeric::int8_value_t>(const PatternSpec&,
                                              gpupower::numeric::DType,
                                              std::size_t, std::uint64_t);

}  // namespace gpupower::core
