// Power-aware input transforms — the three "future work" directions of
// Section V made concrete:
//   1. mean shifting of model weights into value ranges that draw less power,
//   2. permutation-invariant weight sorting (computationally equivalent for
//      independent neurons: permute rows, un-permute the output),
//   3. power-aware sparsity design under a power cap.
#pragma once

#include <cstddef>
#include <vector>

#include "gemm/matrix.hpp"
#include "gpusim/simulator.hpp"
#include "numeric/dtype.hpp"

namespace gpupower::core {

/// Mean shift: W' = W + delta.  NOT computation preserving — callers must
/// tolerate the bias (the paper notes the accuracy/power trade-off).
struct MeanShiftResult {
  std::vector<float> shifted;
  double delta = 0.0;
  /// Mean absolute perturbation of an example activation y = W x relative
  /// to |y|, a cheap proxy for accuracy impact.
  double relative_perturbation = 0.0;
};

[[nodiscard]] MeanShiftResult mean_shift(const std::vector<float>& weights,
                                         double target_mean);

/// Permutation-invariant row sort: rows reordered by ascending row mean.
/// Applying `permutation[i] = original row index now at position i` to the
/// GEMM output restores the original ordering, so the computation is exact.
struct RowSortResult {
  std::vector<float> sorted;            ///< row-major, rows x cols
  std::vector<std::size_t> permutation; ///< new position -> original row
};

[[nodiscard]] RowSortResult sort_rows_permutation_invariant(
    const std::vector<float>& weights, std::size_t rows, std::size_t cols);

/// Inverts the permutation on a row-major output matrix (rows x cols).
[[nodiscard]] std::vector<float> unpermute_rows(
    const std::vector<float>& permuted, const std::vector<std::size_t>& permutation,
    std::size_t rows, std::size_t cols);

/// Power-aware sparsity design: finds the smallest magnitude-pruning
/// sparsity level whose simulated GEMM power fits the cap.
struct SparsityDesign {
  double sparsity = 0.0;       ///< fraction pruned (0 if cap already met)
  double power_w = 0.0;        ///< simulated power at that level
  double l2_retained = 1.0;    ///< fraction of squared weight norm kept
  bool feasible = false;       ///< false if even full sparsity misses the cap
};

class PowerAwareSparsifier {
 public:
  PowerAwareSparsifier(gpupower::gpusim::GpuModel gpu,
                       gpupower::numeric::DType dtype,
                       gpupower::gpusim::SamplingPlan sampling = {});

  /// Searches the given sparsity grid (ascending) against the power cap.
  /// `weights` is a square rows x rows weight matrix; activations are
  /// modelled as a Gaussian matrix of matching shape.
  [[nodiscard]] SparsityDesign design(const std::vector<float>& weights,
                                      std::size_t rows, double power_cap_w,
                                      const std::vector<double>& grid = {
                                          0.0, 0.125, 0.25, 0.375, 0.5, 0.625,
                                          0.75, 0.875}) const;

 private:
  gpupower::gpusim::GpuModel gpu_;
  gpupower::numeric::DType dtype_;
  gpupower::gpusim::SamplingPlan sampling_;
};

/// Magnitude pruning: zeroes the `fraction` smallest-magnitude weights.
[[nodiscard]] std::vector<float> magnitude_prune(const std::vector<float>& weights,
                                                 double fraction);

}  // namespace gpupower::core
