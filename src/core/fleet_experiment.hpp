// Fleet timeline experiments: the measurement protocol for the multi-GPU,
// power-capped pipeline.  A FleetConfig pairs one ExperimentConfig (dtype,
// problem size, base input pattern, seeds, sampling, variation) — which
// fixes the activity working point — with a list of simulated devices
// (heterogeneous GPU models, per-device governor/timeline/priority), a
// shared power cap + allocator policy, and the RC thermal model.  Each
// seed replica builds its inputs and estimates activity ONCE (activity
// depends on inputs and sampling, not on the device), fans the timelines
// across the devices, and replays the fleet in lockstep slices; replicas
// reduce across seeds in seed order, exactly like run_experiment, so
// results are bit-identical no matter how many engine workers computed
// them.
//
// A fleet of one device with an infinite cap and the thermal model off is
// bit-identical to the single-device DVFS pipeline (submit_dvfs) — pinned
// by the equivalence suite.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/dvfs_experiment.hpp"
#include "core/experiment.hpp"
#include "gpusim/fleet/fleet.hpp"

namespace gpupower::core {

/// One simulated device of the fleet.  The GPU model may differ per device
/// (heterogeneous fleets); dtype/n/pattern/seeds come from the shared
/// ExperimentConfig.
struct FleetDeviceConfig {
  gpupower::gpusim::GpuModel gpu = gpupower::gpusim::GpuModel::kA100PCIe;
  gpupower::gpusim::dvfs::GovernorConfig governor;
  int timeline = 0;  ///< index into FleetConfig::timelines
  int priority = 0;  ///< larger = served first by the priority allocator
};

struct FleetConfig {
  /// Shared working point: dtype, n, base pattern, seeds, base_seed,
  /// sampling, and (per-seed) process variation all apply; the `gpu` field
  /// is ignored in favour of the per-device models.
  ExperimentConfig experiment;
  /// Workload timelines devices reference by index — one shared timeline
  /// fanned across the fleet, or one per device (phase-shifted bursts are
  /// what make allocation policy matter).
  std::vector<gpupower::gpusim::dvfs::WorkloadTimeline> timelines;
  std::vector<FleetDeviceConfig> devices;
  /// Per-phase input-pattern overrides, shared by every timeline (see
  /// DvfsConfig::phase_patterns).
  std::vector<PatternSpec> phase_patterns;
  gpupower::gpusim::fleet::AllocatorConfig allocator;
  gpupower::gpusim::fleet::ThermalConfig thermal;
  double slice_s = 0.010;
  int pstates = 5;
};

/// Across-seed reduction of one device's replays.
struct FleetDeviceSummary {
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double peak_power_w = 0.0;
  double completion_s = 0.0;
  double backlog_max_s = 0.0;
  double mean_backlog_s = 0.0;
  double transitions = 0.0;
  double peak_temperature_c = 0.0;    ///< mean across seeds of per-seed peaks
  double throttled_slices = 0.0;      ///< mean across seeds
  double budget_clamped_slices = 0.0; ///< mean across seeds
};

/// Across-seed reduction of the per-seed fleet replays.
struct FleetResult {
  double energy_j = 0.0;       ///< mean across seeds (fleet total)
  double energy_std_j = 0.0;
  double avg_power_w = 0.0;
  double peak_power_w = 0.0;   ///< mean of per-seed aggregate peaks
  double completion_s = 0.0;
  double duration_s = 0.0;
  double backlog_max_s = 0.0;
  /// Fleet-level SLO metric: the p99 quantile across devices of each
  /// device's worst backlog (linear interpolation between order
  /// statistics), mean across seeds.  With few devices this tracks the
  /// max; at fleet scale it is the tail bound an SLO actually states —
  /// "99% of devices stay under X ms behind" — which one pathological
  /// device cannot dominate the way backlog_max_s can.
  double backlog_p99_s = 0.0;
  double mean_backlog_s = 0.0;
  double transitions = 0.0;
  double over_cap_slices = 0.0;  ///< mean slices the floor overdrew the cap
  bool truncated = false;
  int seeds = 0;
  std::vector<FleetDeviceSummary> devices;
  /// Seed 0's full fleet replay, as the representative time-resolved trace
  /// (same memory caveat as DvfsResult::trace — per-device slice series
  /// live until clear_cache()).
  gpupower::gpusim::fleet::FleetRun trace;
};

/// Replays one seed replica's fleet.  Pure and thread-safe, like
/// run_seed_replica.  Throws std::invalid_argument on an invalid config
/// (no devices, missing timeline, out-of-range indices, non-positive
/// slice or cap).
[[nodiscard]] gpupower::gpusim::fleet::FleetRun run_fleet_seed_replica(
    const FleetConfig& config, int seed_index);

/// Folds per-seed replays (in seed order) into the reported result.
[[nodiscard]] FleetResult reduce_fleet_replicas(
    const FleetConfig& config,
    std::span<const gpupower::gpusim::fleet::FleetRun> replicas);

/// Serial reference: all seed replicas in order.  Prefer
/// ExperimentEngine::submit_fleet for anything sweep-shaped.
[[nodiscard]] FleetResult run_fleet(const FleetConfig& config);

/// Cache key, same contract as canonical_config_key: equal keys produce
/// bit-identical FleetResults.
[[nodiscard]] std::string canonical_fleet_key(const FleetConfig& config);

/// Validates the cross-references a hand-assembled config can get wrong
/// (devices present, timeline indices in range, phase-pattern references
/// resolvable, slice/cap/pstates in range).  Returns an empty string when
/// valid, else the first problem — shared by run_fleet_seed_replica and
/// ExperimentEngine::submit_fleet.
[[nodiscard]] std::string validate_fleet_config(const FleetConfig& config);

}  // namespace gpupower::core
