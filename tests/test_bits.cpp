#include "numeric/bits.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gpupower::numeric {
namespace {

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask<std::uint32_t>(0), 0u);
  EXPECT_EQ(low_mask<std::uint32_t>(1), 1u);
  EXPECT_EQ(low_mask<std::uint32_t>(8), 0xFFu);
  EXPECT_EQ(low_mask<std::uint32_t>(32), 0xFFFFFFFFu);
  EXPECT_EQ(low_mask<std::uint16_t>(16), 0xFFFFu);
  EXPECT_EQ(low_mask<std::uint8_t>(8), 0xFFu);
}

TEST(Bits, HammingDistance) {
  EXPECT_EQ(hamming_distance<std::uint32_t>(0, 0), 0);
  EXPECT_EQ(hamming_distance<std::uint32_t>(0xFFFFFFFFu, 0), 32);
  EXPECT_EQ(hamming_distance<std::uint32_t>(0b1010, 0b0101), 4);
  EXPECT_EQ(hamming_distance<std::uint8_t>(0xF0, 0x0F), 8);
}

TEST(Bits, HammingWeightRestrictsWidth) {
  EXPECT_EQ(hamming_weight<std::uint32_t>(0xFFFFFFFFu, 8), 8);
  EXPECT_EQ(hamming_weight<std::uint32_t>(0xFFFFFFFFu, 32), 32);
  EXPECT_EQ(hamming_weight<std::uint32_t>(0x100u, 8), 0);
}

TEST(Bits, BitAlignmentEndpoints) {
  // All bits equal -> 1; all bits opposite -> 0 (the paper's definition).
  EXPECT_DOUBLE_EQ((bit_alignment<std::uint32_t>(0xABCDu, 0xABCDu, 16)), 1.0);
  EXPECT_DOUBLE_EQ((bit_alignment<std::uint32_t>(0xFFFFu, 0x0000u, 16)), 0.0);
  EXPECT_DOUBLE_EQ((bit_alignment<std::uint32_t>(0x00FFu, 0x0000u, 16)), 0.5);
}

TEST(Bits, BitAlignmentIgnoresHighBits) {
  // Bits above `width` must not affect the result.
  EXPECT_DOUBLE_EQ((bit_alignment<std::uint32_t>(0xFF00FFu, 0x0000FFu, 8)), 1.0);
}

TEST(Bits, StreamTogglesCountsTransitions) {
  const std::vector<std::uint16_t> words{0x0000, 0xFFFF, 0xFFFF, 0x0F0F};
  // 16 (all flip) + 0 (same) + 8.
  EXPECT_EQ(stream_toggles(std::span<const std::uint16_t>(words)), 24u);
}

TEST(Bits, StreamTogglesEmptyAndSingle) {
  const std::vector<std::uint32_t> empty;
  EXPECT_EQ(stream_toggles(std::span<const std::uint32_t>(empty)), 0u);
  const std::vector<std::uint32_t> one{0xFFFFFFFFu};
  EXPECT_EQ(stream_toggles(std::span<const std::uint32_t>(one)), 0u);
}

TEST(Bits, StreamWeight) {
  const std::vector<std::uint8_t> words{0xFF, 0x0F, 0x01, 0x00};
  EXPECT_EQ(stream_weight(std::span<const std::uint8_t>(words)), 13u);
}

TEST(Bits, AverageAlignmentMatchesElementwise) {
  const std::vector<std::uint32_t> a{0xFFFFu, 0x0000u};
  const std::vector<std::uint32_t> b{0xFFFFu, 0xFFFFu};
  // First pair fully aligned (1.0), second fully misaligned (0.0).
  EXPECT_DOUBLE_EQ(average_alignment(a, b, 16), 0.5);
}

TEST(Bits, AverageAlignmentDegenerateInputs) {
  const std::vector<std::uint32_t> a{1, 2};
  const std::vector<std::uint32_t> b{1};
  EXPECT_DOUBLE_EQ(average_alignment(a, b, 16), 0.0);  // size mismatch
  EXPECT_DOUBLE_EQ(average_alignment({}, {}, 16), 0.0);
}

TEST(Bits, AverageWeightFraction) {
  const std::vector<std::uint32_t> words{0xFFFFu, 0x0000u};
  EXPECT_DOUBLE_EQ(average_weight_fraction(words, 16), 0.5);
  EXPECT_DOUBLE_EQ(average_weight_fraction({}, 16), 0.0);
}

// Property: toggles along a stream equal the sum of pairwise distances.
TEST(Bits, StreamTogglesMatchesPairwiseSum) {
  std::vector<std::uint32_t> words;
  std::uint32_t x = 0x12345678u;
  for (int i = 0; i < 100; ++i) {
    x = x * 1664525u + 1013904223u;
    words.push_back(x);
  }
  std::uint64_t expected = 0;
  for (std::size_t i = 1; i < words.size(); ++i) {
    expected += static_cast<std::uint64_t>(
        hamming_distance(words[i - 1], words[i]));
  }
  EXPECT_EQ(stream_toggles(std::span<const std::uint32_t>(words)), expected);
}

}  // namespace
}  // namespace gpupower::numeric
