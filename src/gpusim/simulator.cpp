#include "gpusim/simulator.hpp"

#include "patterns/rng.hpp"

namespace gpupower::gpusim {

GpuSimulator::GpuSimulator(GpuModel model, SimOptions options)
    : dev_(device(model)), options_(options) {
  if (options_.variation) {
    // Two independent draws per instance: one shifts switched capacitance
    // (dynamic energy), one shifts static power.  Deterministic in the
    // instance id so re-running on the "same VM" reproduces the same GPU.
    patterns::Xoshiro256 rng(
        patterns::derive_seed(0xFAB5EEDu, options_.variation->instance));
    const double s = options_.variation->sigma_fraction;
    dev_.energy.scale *= 1.0 + s * rng.gaussian();
    dev_.idle_w *= 1.0 + s * rng.gaussian();
  }
}

}  // namespace gpupower::gpusim
