#include "gemm/kernel_desc.hpp"

namespace gpupower::gemm {

KernelDesc kernel_for(gpupower::numeric::DType dtype) noexcept {
  using gpupower::numeric::DType;
  switch (dtype) {
    case DType::kFP32:
      return {"cutlass_simt_sgemm_128x128_8x2_nt", dtype,
              TileConfig::for_dtype(dtype), 0.89};
    case DType::kFP16:
      return {"cutlass_simt_hgemm_128x128_8x2_nt", dtype,
              TileConfig::for_dtype(dtype), 0.87};
    case DType::kFP16T:
      return {"cutlass_tensorop_h16816gemm_128x128_32x4_nt", dtype,
              TileConfig::for_dtype(dtype), 0.86};
    case DType::kINT8:
      return {"cutlass_tensorop_i16832gemm_128x128_64x4_nt", dtype,
              TileConfig::for_dtype(dtype), 0.84};
  }
  return {"cutlass_simt_sgemm_128x128_8x2_nt", DType::kFP32,
          TileConfig::for_dtype(DType::kFP32), 0.89};
}

}  // namespace gpupower::gemm
