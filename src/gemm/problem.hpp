// GEMM problem descriptor: D = alpha * op(A) * op(B) + beta * C
// (Section II).  A is (N, K); B is stored (N, K)-shaped with the same
// pattern as A and is consumed transposed by default, matching the paper's
// "B transposed unless otherwise noted" protocol.
#pragma once

#include <cstddef>

#include "numeric/dtype.hpp"

namespace gpupower::gemm {

struct GemmProblem {
  std::size_t n = 0;  ///< rows of A and D
  std::size_t k = 0;  ///< inner dimension
  std::size_t m = 0;  ///< columns of B-as-consumed and D
  float alpha = 1.0f;
  float beta = 0.0f;
  /// When true (paper default) the stored B buffer is (M, K) and consumed as
  /// B^T, so B[k][j] is read from storage (j, k).  When false the stored
  /// buffer is (K, M) and read directly.
  bool transpose_b = true;

  [[nodiscard]] static GemmProblem square(std::size_t n, bool transpose_b = true) {
    return GemmProblem{n, n, n, 1.0f, 0.0f, transpose_b};
  }

  /// Multiply-accumulate operations in one GEMM.
  [[nodiscard]] std::size_t mac_count() const noexcept { return n * k * m; }
  /// FLOP count (2 per MAC) used by the runtime model.
  [[nodiscard]] double flops() const noexcept {
    return 2.0 * static_cast<double>(mac_count());
  }
};

/// Reads the logical B(k, j) element given storage layout.
template <typename MatrixT>
[[nodiscard]] inline auto b_element(const MatrixT& b_storage, const GemmProblem& p,
                                    std::size_t k, std::size_t j) {
  return p.transpose_b ? b_storage.at(j, k) : b_storage.at(k, j);
}

}  // namespace gpupower::gemm
