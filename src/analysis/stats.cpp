#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <vector>

namespace gpupower::analysis {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double t_critical_95(std::size_t n) noexcept {
  // Two-sided 95% critical values of the t distribution, indexed by
  // degrees of freedom 1..29 (covering samples up to n = 30).
  static constexpr double kT95[29] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045};
  if (n < 2) return 0.0;
  const std::size_t dof = n - 1;
  return dof <= std::size(kT95) ? kT95[dof - 1] : 1.96;
}

double RunningStats::ci95_halfwidth() const noexcept {
  return n_ > 1 ? t_critical_95(n_) * stddev() /
                      std::sqrt(static_cast<double>(n_))
                : 0.0;
}

double mean(std::span<const double> xs) noexcept {
  RunningStats s;
  for (const double x : xs) s.add(x);
  return s.mean();
}

double stddev(std::span<const double> xs) noexcept {
  RunningStats s;
  for (const double x : xs) s.add(x);
  return s.stddev();
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace gpupower::analysis
