#include "core/store/serve.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <istream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <thread>
#include <vector>

#include "analysis/json.hpp"
#include "core/annotations.hpp"
#include "core/dag/dag.hpp"
#include "core/obs/obs.hpp"
#include "core/spec.hpp"

namespace gpupower::core {
namespace {

using analysis::JsonValue;

/// One live session's counters.  The owning session updates them from its
/// reader and streamer threads (atomics — the two sides share no lock),
/// and any session's reader may snapshot them for a sessions listing.
/// Per-session counts are unconditional (the `sessions` command must be
/// accurate with metrics off); the mirrored process-wide obs `serve.*`
/// counters gate themselves on the metrics switch as every metric does.
struct SessionMetrics {
  std::uint64_t id = 0;
  std::int64_t start_ns = 0;
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> points{0};
  std::atomic<std::uint64_t> results{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> dedup_hits{0};
  std::atomic<std::uint64_t> store_hits{0};
  std::atomic<std::uint64_t> bytes_streamed{0};
};

struct SessionRegistry {
  Mutex mutex;
  std::uint64_t next_id GPUPOWER_GUARDED_BY(mutex) = 1;
  /// Insertion order == id order (ids are monotonic), so listings are
  /// sorted without a sort.
  std::vector<std::shared_ptr<SessionMetrics>> live
      GPUPOWER_GUARDED_BY(mutex);
};

SessionRegistry& session_registry() {
  // Immortal (deliberately leaked): sessions on late-exiting threads must
  // never observe a destroyed registry.
  static SessionRegistry* registry = new SessionRegistry;
  return *registry;
}

std::shared_ptr<SessionMetrics> register_session() {
  auto metrics = std::make_shared<SessionMetrics>();
  metrics->start_ns = obs::now_ns();
  SessionRegistry& registry = session_registry();
  MutexLock lock(registry.mutex);
  metrics->id = registry.next_id++;
  registry.live.push_back(metrics);
  obs::counter("serve.sessions").add();
  obs::gauge("serve.active_sessions")
      .set(static_cast<std::int64_t>(registry.live.size()));
  return metrics;
}

void unregister_session(const std::shared_ptr<SessionMetrics>& metrics) {
  SessionRegistry& registry = session_registry();
  MutexLock lock(registry.mutex);
  for (auto it = registry.live.begin(); it != registry.live.end(); ++it) {
    if (it->get() == metrics.get()) {
      registry.live.erase(it);
      break;
    }
  }
  obs::gauge("serve.active_sessions")
      .set(static_cast<std::int64_t>(registry.live.size()));
}

/// RAII registration so a session leaves the registry however its scope
/// unwinds.
struct SessionRegistration {
  std::shared_ptr<SessionMetrics> metrics = register_session();
  SessionRegistration() = default;
  SessionRegistration(const SessionRegistration&) = delete;
  SessionRegistration& operator=(const SessionRegistration&) = delete;
  ~SessionRegistration() { unregister_session(metrics); }
};

/// One submitted scenario awaiting emission.
struct PendingPoint {
  long req = 0;
  std::string label;
  ScenarioConfig config;
  ScenarioHandle handle;
  bool emitted = false;
};

/// Per-request progress, for the trailing done event.
struct RequestProgress {
  long req = 0;
  std::size_t points = 0;
  std::size_t emitted = 0;
  bool done_sent = false;
};

/// Shared between a session's reader thread and its event streamer; every
/// field below the mutex is written by both sides.
struct SessionState {
  Mutex mutex;
  /// Pre-formatted lines from the reader.
  std::deque<std::string> events GPUPOWER_GUARDED_BY(mutex);
  std::vector<PendingPoint> pending GPUPOWER_GUARDED_BY(mutex);
  std::vector<RequestProgress> requests GPUPOWER_GUARDED_BY(mutex);
  bool reader_done GPUPOWER_GUARDED_BY(mutex) = false;
  long request_count GPUPOWER_GUARDED_BY(mutex) = 0;
};

std::string error_event(long req, const std::string& message) {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::string("error"))
      .set("req", JsonValue::integer(req))
      .set("error", JsonValue::string(message));
  return doc.dump();
}

std::string accepted_event(long req, ScenarioKind kind, std::size_t points) {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::string("accepted"))
      .set("req", JsonValue::integer(req))
      .set("scenario", JsonValue::string(name(kind)))
      .set("points", JsonValue::integer(static_cast<long long>(points)));
  return doc.dump();
}

/// Accepted event for a dag request: "points" counts nodes (the number of
/// node events the client will see before done), since per-node point
/// counts are not all known up front (search nodes evaluate adaptively).
std::string dag_accepted_event(long req, std::size_t nodes) {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::string("accepted"))
      .set("req", JsonValue::integer(req))
      .set("scenario", JsonValue::string("dag"))
      .set("points", JsonValue::integer(static_cast<long long>(nodes)));
  return doc.dump();
}

std::string done_event(long req, std::size_t points) {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::string("done"))
      .set("req", JsonValue::integer(req))
      .set("points", JsonValue::integer(static_cast<long long>(points)));
  return doc.dump();
}

std::string stats_event(const ExperimentEngine& engine) {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::string("stats"))
      .set("engine", JsonValue::string(engine_stats_line(engine)))
      // The same document gpowerctl --metrics-out writes
      // (ExperimentEngine::metrics_json), so a dashboard tailing a serve
      // session and one reading metrics files parse one schema.
      .set("metrics", engine.metrics_json())
      // Every live session's counters ride along, so one stats poll
      // (gpowerctl top) sees engine health AND who is driving it.
      .set("sessions", serve_sessions_json());
  return doc.dump();
}

std::string sessions_event() {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::string("sessions"))
      .set("sessions", serve_sessions_json());
  return doc.dump();
}

std::string result_event(const PendingPoint& point,
                         const ScenarioResult& result,
                         const ServeOptions& options) {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::string("result"))
      .set("req", JsonValue::integer(point.req))
      .set("point", JsonValue::string(point.label))
      .set("scenario", JsonValue::string(name(point.config.kind())));
  JsonValue metrics = JsonValue::object();
  for (const auto& [metric, value] : scenario_summary_metrics(result)) {
    metrics.set(metric, JsonValue::number(value));
  }
  doc.set("metrics", std::move(metrics));
  if (options.full_results) {
    doc.set("result", scenario_to_json(point.config, result));
  }
  // Compact dump: never contains a raw newline, so one event is one line.
  return doc.dump();
}

/// One dag node's event, emitted as the node finalises: the node name /
/// kind, every executed point with its summary metrics (full display
/// documents with ServeOptions::full_results), and the reduce/search
/// result document.
std::string dag_node_event(long req, const dag::DagNodeRun& node,
                           const ServeOptions& options) {
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::string("node"))
      .set("req", JsonValue::integer(req))
      .set("node", JsonValue::string(node.name))
      .set("kind", JsonValue::string(dag::name(node.kind)));
  JsonValue points = JsonValue::array();
  for (const dag::DagNodePoint& point : node.points) {
    JsonValue entry = JsonValue::object();
    entry.set("label", JsonValue::string(point.label));
    JsonValue metrics = JsonValue::object();
    for (const auto& [metric, value] : scenario_summary_metrics(point.result)) {
      metrics.set(metric, JsonValue::number(value));
    }
    entry.set("metrics", std::move(metrics));
    if (options.full_results) {
      entry.set("result", scenario_to_json(point.config, point.result));
    }
    points.push(std::move(entry));
  }
  doc.set("points", std::move(points));
  if (node.kind == dag::DagNodeKind::kReduce ||
      node.kind == dag::DagNodeKind::kSearch) {
    doc.set("result", node.doc);
  }
  return doc.dump();
}

std::string trimmed(const std::string& line) {
  std::size_t begin = 0;
  std::size_t end = line.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(line[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(line[end - 1]))) {
    --end;
  }
  return line.substr(begin, end - begin);
}

/// Folds one submit outcome into a session's dedup/store attribution and
/// the process-wide mirrors.
void count_outcome(SessionMetrics& metrics,
                   ExperimentEngine::SubmitOutcome outcome) {
  switch (outcome) {
    case ExperimentEngine::SubmitOutcome::kComputed:
      break;
    case ExperimentEngine::SubmitOutcome::kCacheHit:
      metrics.dedup_hits.fetch_add(1, std::memory_order_relaxed);
      obs::counter("serve.dedup_hits").add();
      break;
    case ExperimentEngine::SubmitOutcome::kStoreHit:
      metrics.store_hits.fetch_add(1, std::memory_order_relaxed);
      obs::counter("serve.store_hits").add();
      break;
  }
}

/// A dag request in flight on its own helper thread: run_dag blocks on
/// upstream results while resolving `$ref`s, and the reader must stay
/// responsive to further request lines.  The reader reaps finished
/// workers between requests (bounded growth on a long-lived session) and
/// joins the rest before declaring itself done — detaching is banned
/// project wide.
struct DagWorker {
  std::thread thread;
  std::shared_ptr<std::atomic<bool>> finished;
};

void reap_dag_workers(std::vector<DagWorker>& workers, bool join_all) {
  for (auto it = workers.begin(); it != workers.end();) {
    if (join_all || it->finished->load(std::memory_order_acquire)) {
      it->thread.join();
      it = workers.erase(it);
    } else {
      ++it;
    }
  }
}

/// Launches a dag request: accepted event now, one node event per node as
/// it finalises (deterministic order), done (or error) when the graph
/// completes.  Engine submissions inside run_dag dedup through the shared
/// cache/store exactly like direct submits from other sessions.
void handle_dag_request(ExperimentEngine& engine, SessionState& session,
                        SessionMetrics& metrics, const ServeOptions& options,
                        long req,
                        const std::shared_ptr<const dag::DagSpec>& spec,
                        std::vector<DagWorker>& workers) {
  {
    MutexLock lock(session.mutex);
    session.events.push_back(dag_accepted_event(req, spec->nodes.size()));
  }
  DagWorker worker;
  worker.finished = std::make_shared<std::atomic<bool>>(false);
  const auto finished = worker.finished;
  worker.thread = std::thread([&engine, &session, &metrics, options, req, spec,
                               finished] {
    const auto on_node = [&](const dag::DagNodeRun& node) {
      metrics.points.fetch_add(node.points.size(), std::memory_order_relaxed);
      obs::counter("serve.points").add(node.points.size());
      for (const dag::DagNodePoint& point : node.points) {
        count_outcome(metrics, point.outcome);
      }
      metrics.results.fetch_add(1, std::memory_order_relaxed);
      obs::counter("serve.results").add();
      MutexLock lock(session.mutex);
      session.events.push_back(dag_node_event(req, node, options));
    };
    dag::DagRun run;
    std::string error;
    bool ok = false;
    try {
      ok = dag::run_dag(engine, *spec, run, error, on_node);
    } catch (const std::exception& e) {
      error = e.what();  // engine worker exceptions rethrown by handles
    }
    if (ok) {
      MutexLock lock(session.mutex);
      session.events.push_back(done_event(req, spec->nodes.size()));
    } else {
      metrics.errors.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(session.mutex);
      session.events.push_back(error_event(req, error));
    }
    finished->store(true, std::memory_order_release);
  });
  workers.push_back(std::move(worker));
}

/// Parses and submits one request line; records pending points and the
/// accepted (or error) event under the session lock.
void handle_request(ExperimentEngine& engine, SessionState& session,
                    SessionMetrics& metrics, const ServeOptions& options,
                    long req, const std::string& line,
                    std::vector<DagWorker>& dag_workers) {
  const SpecParseResult parsed = parse_scenario_spec_text(line);
  if (!parsed.ok) {
    metrics.errors.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(session.mutex);
    session.events.push_back(error_event(req, parsed.error));
    return;
  }
  if (parsed.spec.dag != nullptr) {
    handle_dag_request(engine, session, metrics, options, req, parsed.spec.dag,
                       dag_workers);
    return;
  }

  std::vector<PendingPoint> points;
  try {
    if (parsed.spec.campaign) {
      CampaignRun run;
      std::string error;
      if (!submit_campaign(engine, parsed.spec, run, error)) {
        metrics.errors.fetch_add(1, std::memory_order_relaxed);
        MutexLock lock(session.mutex);
        session.events.push_back(error_event(req, error));
        return;
      }
      points.reserve(run.points.size());
      for (std::size_t i = 0; i < run.points.size(); ++i) {
        points.push_back({req, run.points[i].label, run.points[i].config,
                          run.handles[i], false});
        count_outcome(metrics, run.outcomes[i]);
      }
    } else {
      ExperimentEngine::SubmitOutcome outcome;
      const ScenarioHandle handle = engine.submit(parsed.spec.config, &outcome);
      points.push_back({req, std::string(name(parsed.spec.config.kind())),
                        parsed.spec.config, handle, false});
      count_outcome(metrics, outcome);
    }
  } catch (const std::exception& e) {
    // Validator rejections (std::invalid_argument) arrive here.
    metrics.errors.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(session.mutex);
    session.events.push_back(error_event(req, e.what()));
    return;
  }

  metrics.points.fetch_add(points.size(), std::memory_order_relaxed);
  obs::counter("serve.points").add(points.size());
  MutexLock lock(session.mutex);
  session.events.push_back(
      accepted_event(req, points.front().config.kind(), points.size()));
  session.requests.push_back({req, points.size(), 0, false});
  for (PendingPoint& point : points) {
    session.pending.push_back(std::move(point));
  }
}

RequestProgress* find_request(SessionState& session, long req)
    GPUPOWER_REQUIRES(session.mutex) {
  for (RequestProgress& progress : session.requests) {
    if (progress.req == req) return &progress;
  }
  return nullptr;
}

}  // namespace

analysis::JsonValue serve_sessions_json() {
  JsonValue sessions = JsonValue::array();
  const std::int64_t now = obs::now_ns();
  SessionRegistry& registry = session_registry();
  MutexLock lock(registry.mutex);
  for (const auto& m : registry.live) {
    const auto count = [](const std::atomic<std::uint64_t>& v) {
      return JsonValue::integer(
          static_cast<long long>(v.load(std::memory_order_relaxed)));
    };
    JsonValue entry = JsonValue::object();
    entry.set("id", JsonValue::integer(static_cast<long long>(m->id)))
        .set("age_s",
             JsonValue::number(static_cast<double>(now - m->start_ns) * 1e-9))
        .set("requests", count(m->requests))
        .set("points", count(m->points))
        .set("results", count(m->results))
        .set("errors", count(m->errors))
        .set("dedup_hits", count(m->dedup_hits))
        .set("store_hits", count(m->store_hits))
        .set("bytes_streamed", count(m->bytes_streamed));
    sessions.push(std::move(entry));
  }
  return sessions;
}

std::vector<std::pair<std::string, double>> scenario_summary_metrics(
    const ScenarioResult& result) {
  switch (result.kind()) {
    case ScenarioKind::kStatic: {
      const ExperimentResult& r = result.static_result();
      return {{"power_w", r.power_w},
              {"energy_per_iter_j", r.energy_per_iter_j}};
    }
    case ScenarioKind::kDvfs: {
      const DvfsResult& r = result.dvfs();
      return {{"energy_j", r.energy_j},
              {"completion_s", r.completion_s},
              {"backlog_mean_s", r.mean_backlog_s},
              {"backlog_max_s", r.backlog_max_s}};
    }
    case ScenarioKind::kFleet: {
      const FleetResult& r = result.fleet();
      return {{"energy_j", r.energy_j},
              {"completion_s", r.completion_s},
              {"backlog_mean_s", r.mean_backlog_s},
              {"backlog_max_s", r.backlog_max_s}};
    }
  }
  return {};
}

long serve_session(ExperimentEngine& engine, std::istream& in,
                   std::ostream& out, const ServeOptions& options) {
  SessionState session;
  const SessionRegistration registration;
  SessionMetrics& metrics = *registration.metrics;

  // The reader thread turns stdin/socket lines into submissions without
  // blocking the event stream: a client can pipeline many requests and
  // results of the first interleave with parsing of the rest.
  std::thread reader([&engine, &session, &metrics, &in, &options] {
    std::vector<DagWorker> dag_workers;
    std::string raw;
    long req = 0;
    while (std::getline(in, raw)) {
      reap_dag_workers(dag_workers, /*join_all=*/false);
      const std::string line = trimmed(raw);
      if (line.empty()) continue;
      ++req;
      metrics.requests.fetch_add(1, std::memory_order_relaxed);
      obs::counter("serve.requests").add();
      if (line == "stats") {
        MutexLock lock(session.mutex);
        session.events.push_back(stats_event(engine));
        continue;
      }
      if (line == "sessions") {
        MutexLock lock(session.mutex);
        session.events.push_back(sessions_event());
        continue;
      }
      // JSON command lines ({"cmd":"stats"}) share the request grammar
      // with scenario specs; anything carrying a "cmd" key is a command,
      // never a spec.
      if (line.front() == '{') {
        const analysis::JsonParseResult parsed = analysis::json_parse(line);
        if (parsed.ok && parsed.value.is_object() &&
            parsed.value.find("cmd") != nullptr) {
          const analysis::JsonValue& cmd = *parsed.value.find("cmd");
          const bool is_stats = cmd.is_string() && cmd.as_string() == "stats";
          const bool is_sessions =
              cmd.is_string() && cmd.as_string() == "sessions";
          if (!is_stats && !is_sessions) {
            metrics.errors.fetch_add(1, std::memory_order_relaxed);
          }
          MutexLock lock(session.mutex);
          if (is_stats) {
            session.events.push_back(stats_event(engine));
          } else if (is_sessions) {
            session.events.push_back(sessions_event());
          } else {
            session.events.push_back(error_event(
                req, "unknown cmd (supported commands are {\"cmd\":\"stats\"} "
                     "and {\"cmd\":\"sessions\"})"));
          }
          continue;
        }
      }
      handle_request(engine, session, metrics, options, req, line,
                     dag_workers);
    }
    // Dag workers push node events until they finish; join them all
    // before declaring the reader done so the streamer never exits with a
    // dag still producing.
    reap_dag_workers(dag_workers, /*join_all=*/true);
    MutexLock lock(session.mutex);
    session.reader_done = true;
    session.request_count = req;
  });

  // Event streamer: drain reader events, then emit every completed point
  // the moment its handle is ready — the whole reason serve exists.
  // Every line to the client flows through emit(), so bytes_streamed is
  // exact (payload + newline).
  const auto emit = [&out, &metrics](const std::string& line) {
    out << line << '\n';
    metrics.bytes_streamed.fetch_add(line.size() + 1,
                                     std::memory_order_relaxed);
    obs::counter("serve.bytes_streamed").add(line.size() + 1);
  };
  std::size_t results_since_stats = 0;  // streamer-thread local
  for (;;) {
    bool all_done = false;
    {
      MutexLock lock(session.mutex);
      while (!session.events.empty()) {
        emit(session.events.front());
        session.events.pop_front();
      }
      for (PendingPoint& point : session.pending) {
        if (point.emitted || !point.handle.ready()) continue;
        std::string line;
        bool ok = true;
        try {
          line = result_event(point, point.handle.get(), options);
        } catch (const std::exception& e) {
          line = error_event(point.req, point.label + ": " + e.what());
          ok = false;
        }
        emit(line);
        (ok ? metrics.results : metrics.errors)
            .fetch_add(1, std::memory_order_relaxed);
        if (ok) obs::counter("serve.results").add();
        point.emitted = true;
        // Periodic stats: a long-lived session reports engine health
        // every N completed scenarios without being asked (off by
        // default so the event stream of existing clients is unchanged).
        // Counted per result, not per poll batch, so the cadence is
        // deterministic however completions coalesce.
        if (options.stats_every > 0 &&
            ++results_since_stats >=
                static_cast<std::size_t>(options.stats_every)) {
          results_since_stats = 0;
          emit(stats_event(engine));
        }
        RequestProgress* progress = find_request(session, point.req);
        if (progress != nullptr && ++progress->emitted == progress->points &&
            !progress->done_sent) {
          progress->done_sent = true;
          emit(done_event(progress->req, progress->points));
        }
      }
      out.flush();
      all_done = session.reader_done && session.events.empty();
      if (all_done) {
        for (const PendingPoint& point : session.pending) {
          if (!point.emitted) {
            all_done = false;
            break;
          }
        }
      }
    }
    if (all_done || !out) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options.poll_ms > 0 ? options.poll_ms : 1));
  }
  reader.join();
  // The reader has exited and is joined: request_count is frozen, but the
  // analysis cannot see the join, so read it under the lock anyway (free).
  MutexLock lock(session.mutex);
  return session.request_count;
}

namespace {

/// Minimal bidirectional streambuf over a connected socket fd, so a
/// socket client reuses the exact stream-based serve_session.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) { setg(in_, in_, in_); }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, in_, sizeof(in_));
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(in_[0]);
  }

  int_type overflow(int_type ch) override {
    if (ch == traits_type::eof()) return 0;
    const char c = traits_type::to_char_type(ch);
    return ::write(fd_, &c, 1) == 1 ? ch : traits_type::eof();
  }

  std::streamsize xsputn(const char* data, std::streamsize count) override {
    std::streamsize written = 0;
    while (written < count) {
      const ssize_t n = ::write(fd_, data + written,
                                static_cast<std::size_t>(count - written));
      if (n <= 0) break;
      written += n;
    }
    return written;
  }

 private:
  int fd_;
  char in_[4096];
};

}  // namespace

void ServeSocketControl::request_stop() {
  MutexLock lock(mutex_);
  stop_requested_ = true;
  if (listen_fd_ >= 0) {
    // shutdown(2), not close(2): closing from another thread races fd
    // reuse, while shutdown leaves the fd valid and makes the parked
    // accept(2) return EINVAL immediately.
    (void)::shutdown(listen_fd_, SHUT_RDWR);
  }
}

bool ServeSocketControl::stop_requested() const {
  MutexLock lock(mutex_);
  return stop_requested_;
}

void ServeSocketControl::attach_listener(int fd) {
  MutexLock lock(mutex_);
  listen_fd_ = fd;
  if (stop_requested_) {
    // request_stop() already ran: poison the listener now so the first
    // accept(2) returns instead of parking forever.
    (void)::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void ServeSocketControl::detach_listener() {
  MutexLock lock(mutex_);
  listen_fd_ = -1;
}

std::size_t ServeSocketControl::tracked_sessions() const {
  MutexLock lock(mutex_);
  return tracked_sessions_;
}

void ServeSocketControl::set_tracked_sessions(std::size_t count) {
  MutexLock lock(mutex_);
  tracked_sessions_ = count;
}

bool serve_unix_socket(ExperimentEngine& engine,
                       const std::string& socket_path,
                       const ServeOptions& options, std::string& error,
                       ServeSocketControl* control) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long: " + socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  (void)::unlink(socket_path.c_str());  // a stale socket from a crashed run
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    error = "bind/listen(" + socket_path + "): " + std::strerror(errno);
    (void)::close(listen_fd);
    return false;
  }

  if (control != nullptr) control->attach_listener(listen_fd);

  // One thread per live connection, reaped as clients disconnect.  A
  // long-lived service must not accumulate a joinable thread (kernel
  // stack + handle) per client forever, and detaching is banned project
  // wide (no-detach lint): each session flips its `finished` latch as its
  // last act, and the accept loop joins flagged threads — join is then
  // immediate — before taking the next client.
  struct SessionSlot {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> finished;
  };
  std::vector<SessionSlot> sessions;
  const auto reap_finished = [&sessions] {
    for (auto it = sessions.begin(); it != sessions.end();) {
      if (it->finished->load(std::memory_order_acquire)) {
        it->thread.join();
        it = sessions.erase(it);
      } else {
        ++it;
      }
    }
  };

  bool clean_stop = false;
  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      if (control != nullptr && control->stop_requested()) {
        clean_stop = true;  // request_stop() shut the listener down
      } else {
        error = std::string("accept: ") + std::strerror(errno);
      }
      break;
    }
    reap_finished();
    auto finished = std::make_shared<std::atomic<bool>>(false);
    SessionSlot slot;
    slot.finished = finished;
    slot.thread = std::thread([&engine, options, client, finished] {
      FdStreamBuf buffer(client);
      std::istream in(&buffer);
      std::ostream out(&buffer);
      (void)serve_session(engine, in, out, options);
      (void)::shutdown(client, SHUT_RDWR);
      (void)::close(client);
      finished->store(true, std::memory_order_release);
    });
    sessions.push_back(std::move(slot));
    if (control != nullptr) control->set_tracked_sessions(sessions.size());
  }
  for (SessionSlot& session : sessions) session.thread.join();
  if (control != nullptr) control->detach_listener();
  (void)::close(listen_fd);
  (void)::unlink(socket_path.c_str());
  return clean_stop;
}

}  // namespace gpupower::core
