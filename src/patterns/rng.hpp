// Deterministic, platform-independent random number generation.
//
// The paper averages every experiment over 10 seeds with A and B drawn from
// different seeds (Section III).  Reproducing that protocol requires bit-
// identical random streams across compilers, so we implement our own
// xoshiro256** engine and Box-Muller Gaussian instead of relying on the
// implementation-defined std::normal_distribution.
#pragma once

#include <cstdint>
#include <optional>

namespace gpupower::patterns {

/// SplitMix64: used to expand a single seed into engine state (the
/// initialisation recommended by the xoshiro authors).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  std::uint64_t next() noexcept;
  std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~std::uint64_t{0}; }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Standard normal via Box-Muller; caches the second variate.
  double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

 private:
  std::uint64_t s_[4];
  std::optional<double> cached_gaussian_;
};

/// Derives a stream-specific seed so that e.g. the A and B matrices of the
/// same experiment replica never share a random stream.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) noexcept;

}  // namespace gpupower::patterns
