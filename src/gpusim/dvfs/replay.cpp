#include "gpusim/dvfs/replay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/obs/obs.hpp"

namespace gpupower::gpusim::dvfs {
namespace {

constexpr double kBacklogEps = 1e-9;
/// Hard cap on slices per replay (~4M; at the 10 ms default that is ~12
/// hours of simulated time).  A pathological slice/duration combination
/// truncates at the cap instead of exhausting memory.
constexpr std::size_t kMaxReplaySlices = std::size_t{1} << 22;

}  // namespace

telemetry::UtilTrace ReplayResult::util_trace() const {
  telemetry::UtilTrace trace;
  for (const ReplaySlice& slice : slices) {
    trace.push(slice.t_s + slice_s, slice.utilization);
  }
  return trace;
}

telemetry::PowerTrace ReplayResult::power_trace() const {
  telemetry::PowerTrace trace;
  for (const ReplaySlice& slice : slices) {
    trace.push(slice.t_s + slice_s, slice.power_w);
  }
  return trace;
}

TimelineReplayer::TimelineReplayer(const DeviceDescriptor& dev,
                                   const gemm::GemmProblem& problem,
                                   gpupower::numeric::DType dtype,
                                   const ActivityTotals& activity,
                                   const PStateTable& table)
    : TimelineReplayer(dev, problem, dtype,
                       std::span<const ActivityTotals>(&activity, 1), table) {}

TimelineReplayer::TimelineReplayer(const DeviceDescriptor& dev,
                                   const gemm::GemmProblem& problem,
                                   gpupower::numeric::DType dtype,
                                   std::span<const ActivityTotals> variants,
                                   const PStateTable& table)
    : dev_(dev), table_(table) {
  if (variants.empty()) {
    // An empty variant table would leave every slice with nothing to
    // price; fail loudly instead of indexing past it later.
    throw std::invalid_argument(
        "TimelineReplayer: at least one activity variant is required");
  }
  const PowerCalculator calc(dev_);
  reports_.reserve(variants.size());
  for (const ActivityTotals& activity : variants) {
    std::vector<PowerReport> reports;
    reports.reserve(table_.size());
    for (const PState& state : table_.states()) {
      reports.push_back(
          calc.evaluate_at(problem, dtype, activity, state.operating_point()));
    }
    reports_.push_back(std::move(reports));
  }
}

ReplayResult TimelineReplayer::replay(const WorkloadTimeline& timeline,
                                      Governor& governor, double slice_s,
                                      bool drain_backlog) const {
  if (slice_s <= 0.0 || table_.size() == 0) return ReplayResult{};
  // One span per replay; per-slice spans at the 10 ms default would
  // record millions of events per replica.  The slice total rides along
  // as an obs counter instead.
  core::obs::Span span("dvfs.replay");
  DeviceCursor cursor(*this, timeline, governor, slice_s, drain_backlog);
  while (cursor.plan()) cursor.step();
  ReplayResult result = cursor.finish();
  static core::obs::Counter& slices = core::obs::counter("dvfs.slices");
  slices.add(result.slices.size());
  return result;
}

DeviceCursor::DeviceCursor(const TimelineReplayer& replayer,
                           const WorkloadTimeline& timeline,
                           Governor& governor, double slice_s,
                           bool drain_backlog)
    : replayer_(replayer),
      timeline_(timeline),
      governor_(governor),
      slice_s_(slice_s),
      drain_backlog_(drain_backlog) {
  result_.slice_s = slice_s;
  governor_.reset();

  // Horizon: the timeline plus, when draining, enough slack to empty any
  // backlog even at the slowest state's *effective* (post-TDP-throttle)
  // clock — bounded, so a pathological governor cannot spin the replay
  // forever; `truncated` reports the backstop firing.  External clamps
  // (budget, thermal) only move the machine within the table, so the
  // table-wide slowest rate still bounds a capped fleet's drain.
  double slowest_frac = 1.0;
  for (std::size_t v = 0; v < replayer_.variant_count(); ++v) {
    for (const PowerReport& report : replayer_.pstate_reports(v)) {
      slowest_frac = std::min(slowest_frac, report.effective_clock_frac);
    }
  }
  // Only guard against zero: a deep P-state under a hard TDP clamp can
  // legitimately sit far below 0.05 effective, and the horizon must cover
  // a drain at that true rate (kMaxReplaySlices still backstops).
  slowest_frac = std::max(slowest_frac, 1e-4);
  const double horizon =
      drain_backlog
          ? timeline_.duration_s() * (1.0 + 1.0 / slowest_frac) + slice_s_
          : timeline_.duration_s();
  max_slices_ = std::min(
      static_cast<std::size_t>(std::ceil(horizon / slice_s_ + 0.5)),
      kMaxReplaySlices);
  result_.slices.reserve(std::min(max_slices_, std::size_t{1} << 20));

  // Per-state effective serve rates for the governors that reason about
  // throughput (the oracle): what each state actually serves after the
  // TDP clamp, not its nominal clock.  Base-variant rates — the governor
  // models the machine, not the per-phase inputs.
  effective_clock_.reserve(replayer_.pstate_reports().size());
  for (const PowerReport& report : replayer_.pstate_reports()) {
    effective_clock_.push_back(report.effective_clock_frac);
  }
}

bool DeviceCursor::plan() {
  if (index_ >= max_slices_) return false;
  const double t0 = static_cast<double>(index_) * slice_s_;
  const bool in_timeline = t0 < timeline_.duration_s();
  if (!in_timeline && (!drain_backlog_ || backlog_s_ <= kBacklogEps)) {
    return false;
  }

  // Piecewise-constant timelines are sampled at the midpoint of the
  // slice's in-timeline window, so phase boundaries landing exactly on
  // slice edges stay unambiguous and a final partial slice (duration not
  // a multiple of slice_s — the norm for trace-driven replay) still sees
  // its load instead of sampling past the end.
  planned_covered_s_ =
      in_timeline ? std::min(slice_s_, timeline_.duration_s() - t0) : 0.0;
  planned_offered_ =
      planned_covered_s_ > 0.0
          ? timeline_.offered_at(t0 + 0.5 * planned_covered_s_)
          : 0.0;

  // The slice's activity variant: the phase's pattern override when the
  // midpoint lands on one (0 is the base working point).  Drain-tail
  // slices past the timeline charge the base variant.
  planned_variant_ = 0;
  if (planned_covered_s_ > 0.0) {
    const int pattern =
        timeline_.pattern_at(t0 + 0.5 * planned_covered_s_);
    // Out-of-range overrides (config validation should have caught them)
    // fall back to the base variant rather than read past the table.
    if (pattern >= 0 &&
        static_cast<std::size_t>(pattern) + 1 < replayer_.variant_count()) {
      planned_variant_ = static_cast<std::size_t>(pattern) + 1;
    }
  }

  GovernorInput input;
  input.t_s = t0;
  input.slice_s = slice_s_;
  input.utilization = last_util_;
  input.offered_next = planned_offered_;
  input.backlog_s = backlog_s_;
  input.pstate = pstate_;
  input.effective_clock = effective_clock_;
  planned_state_ =
      replayer_.table_.clamp_index(governor_.decide(input, replayer_.table_));
  return true;
}

double DeviceCursor::predicted_power_w(int state,
                                       double temperature_c) const {
  const auto& reports = replayer_.pstate_reports(planned_variant_);
  const PowerReport& report = reports[static_cast<std::size_t>(state)];
  const double eff_clock = std::max(report.effective_clock_frac, 1e-6);
  const double wanted =
      backlog_s_ + planned_offered_ * planned_covered_s_;
  const double busy = std::min(slice_s_, wanted / eff_clock);
  const double util = busy / slice_s_;
  if (temperature_c >= 0.0) {
    const double leakage_w =
        report.idle_w * replayer_.dev_.leakage_per_c *
        std::max(0.0, temperature_c - kLeakageRefC);
    return (report.total_w - report.leakage_w) * util +
           report.idle_w * (1.0 - util) + leakage_w;
  }
  return report.total_w * util + report.idle_w * (1.0 - util);
}

double DeviceCursor::demand_w(double temperature_c) const noexcept {
  return predicted_power_w(planned_state_, temperature_c);
}

double DeviceCursor::floor_w(double temperature_c) const noexcept {
  // The deepest state's predicted draw for the planned slice: the least
  // the device can physically draw while it still serves its queue — a
  // zero-budget grant cannot push it below this.
  const auto& reports = replayer_.pstate_reports(planned_variant_);
  return predicted_power_w(static_cast<int>(reports.size()) - 1,
                           temperature_c);
}

double DeviceCursor::pending_work_s() const noexcept {
  return backlog_s_ + planned_offered_ * planned_covered_s_;
}

double DeviceCursor::efficiency_s_per_j() const noexcept {
  const auto& reports = replayer_.pstate_reports(planned_variant_);
  const PowerReport& report =
      reports[static_cast<std::size_t>(planned_state_)];
  return report.effective_clock_frac / std::max(report.total_w, 1e-9);
}

void DeviceCursor::step(const StepConstraint& constraint) {
  const auto& reports = replayer_.pstate_reports(planned_variant_);

  // Constraint clamps deepen the governor's choice, never boost it: first
  // the thermal throttle floor, then the power budget (deepen until the
  // state's steady-state active power fits, or the table runs out — the
  // deepest state is the physical floor a starved budget cannot push
  // below).
  int next = planned_state_;
  if (constraint.min_pstate > next) {
    next = replayer_.table_.clamp_index(constraint.min_pstate);
  }
  while (static_cast<std::size_t>(next) + 1 < reports.size() &&
         predicted_power_w(next, constraint.temperature_c) >
             constraint.budget_w) {
    ++next;
  }

  // The first decision seeds the machine (the device "boots" into the
  // governor's choice); only subsequent changes are transitions, so a
  // pinned fixed(p) governor reports zero.
  if (index_ > 0 && next != pstate_) ++result_.transitions;
  pstate_ = next;

  const PowerReport& report = reports[static_cast<std::size_t>(pstate_)];
  const double eff_clock = std::max(report.effective_clock_frac, 1e-6);

  // Work arrives only over the slice's in-timeline window (equal to
  // slice_s everywhere except a trailing partial slice).
  const double arriving =
      planned_offered_ * planned_covered_s_;  // boost-seconds of work
  const double wanted = backlog_s_ + arriving;
  // Busy wall time first: a saturated slice is exactly slice_s, so the
  // realized utilization is exactly 1.0 (and the slice's power exactly
  // the steady-state total — the degenerate-case bit-identicality).
  const double busy = std::min(slice_s_, wanted / eff_clock);
  const double served = std::min(wanted, busy * eff_clock);
  backlog_s_ = std::max(0.0, wanted - served);
  const double util = busy / slice_s_;

  // Idle fraction of the slice sits at the *parked state's* idle floor
  // (its core rail already at the lowered voltage), busy fraction at the
  // state's active steady-state power.  With a threaded die temperature
  // the leakage term comes from that temperature (RC thermal model)
  // instead of the per-state steady-state fixed point; without one the
  // baked totals apply unchanged — the bit-identical historical path.
  double power_w;
  if (constraint.temperature_c >= 0.0) {
    const double leakage_w =
        report.idle_w * replayer_.dev_.leakage_per_c *
        std::max(0.0, constraint.temperature_c - kLeakageRefC);
    power_w = (report.total_w - report.leakage_w) * util +
              report.idle_w * (1.0 - util) + leakage_w;
  } else {
    power_w = report.total_w * util + report.idle_w * (1.0 - util);
  }

  const double t0 = static_cast<double>(index_) * slice_s_;
  ReplaySlice slice;
  slice.t_s = t0;
  slice.offered = planned_offered_;
  slice.utilization = util;
  slice.pstate = pstate_;
  slice.clock_frac = report.effective_clock_frac;
  slice.power_w = power_w;
  slice.backlog_s = backlog_s_;
  result_.slices.push_back(slice);

  result_.energy_j += power_w * slice_s_;
  result_.peak_power_w = std::max(result_.peak_power_w, power_w);
  result_.work_offered_s += arriving;
  result_.work_completed_s += served;
  if (served > 0.0) result_.completion_s = t0 + busy;
  result_.backlog_max_s = std::max(result_.backlog_max_s, backlog_s_);
  backlog_time_integral_ += backlog_s_ * slice_s_;
  last_util_ = util;
  ++index_;
}

ReplayResult DeviceCursor::finish() {
  // The slice cap fired with work still queued: the summary under-counts
  // the tail, so say so instead of reporting a clean completion.
  result_.truncated = drain_backlog_ && backlog_s_ > kBacklogEps &&
                      result_.slices.size() >= max_slices_;

  result_.duration_s =
      static_cast<double>(result_.slices.size()) * slice_s_;
  if (result_.duration_s > 0.0) {
    result_.avg_power_w = result_.energy_j / result_.duration_s;
    result_.mean_backlog_s = backlog_time_integral_ / result_.duration_s;
  }
  return std::move(result_);
}

}  // namespace gpupower::gpusim::dvfs
