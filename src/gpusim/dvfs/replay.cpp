#include "gpusim/dvfs/replay.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gpupower::gpusim::dvfs {
namespace {

constexpr double kBacklogEps = 1e-9;
/// Hard cap on slices per replay (~4M; at the 10 ms default that is ~12
/// hours of simulated time).  A pathological slice/duration combination
/// truncates at the cap instead of exhausting memory.
constexpr std::size_t kMaxReplaySlices = std::size_t{1} << 22;

}  // namespace

telemetry::UtilTrace ReplayResult::util_trace() const {
  telemetry::UtilTrace trace;
  for (const ReplaySlice& slice : slices) {
    trace.push(slice.t_s + slice_s, slice.utilization);
  }
  return trace;
}

telemetry::PowerTrace ReplayResult::power_trace() const {
  telemetry::PowerTrace trace;
  for (const ReplaySlice& slice : slices) {
    trace.push(slice.t_s + slice_s, slice.power_w);
  }
  return trace;
}

TimelineReplayer::TimelineReplayer(const DeviceDescriptor& dev,
                                   const gemm::GemmProblem& problem,
                                   gpupower::numeric::DType dtype,
                                   const ActivityTotals& activity,
                                   const PStateTable& table)
    : dev_(dev), table_(table) {
  const PowerCalculator calc(dev_);
  reports_.reserve(table_.size());
  for (const PState& state : table_.states()) {
    reports_.push_back(
        calc.evaluate_at(problem, dtype, activity, state.operating_point()));
  }
}

ReplayResult TimelineReplayer::replay(const WorkloadTimeline& timeline,
                                      Governor& governor, double slice_s,
                                      bool drain_backlog) const {
  ReplayResult result;
  if (slice_s <= 0.0 || table_.size() == 0) return result;
  result.slice_s = slice_s;
  governor.reset();

  // Horizon: the timeline plus, when draining, enough slack to empty any
  // backlog even at the slowest state's *effective* (post-TDP-throttle)
  // clock — bounded, so a pathological governor cannot spin the replay
  // forever; `truncated` reports the backstop firing.
  double slowest_frac = 1.0;
  for (const PowerReport& report : reports_) {
    slowest_frac = std::min(slowest_frac, report.effective_clock_frac);
  }
  // Only guard against zero: a deep P-state under a hard TDP clamp can
  // legitimately sit far below 0.05 effective, and the horizon must cover
  // a drain at that true rate (kMaxReplaySlices still backstops).
  slowest_frac = std::max(slowest_frac, 1e-4);
  const double horizon =
      drain_backlog
          ? timeline.duration_s() * (1.0 + 1.0 / slowest_frac) + slice_s
          : timeline.duration_s();
  const auto max_slices = std::min(
      static_cast<std::size_t>(std::ceil(horizon / slice_s + 0.5)),
      kMaxReplaySlices);
  result.slices.reserve(std::min(max_slices, std::size_t{1} << 20));

  double backlog_s = 0.0;
  double last_util = 0.0;
  int pstate = 0;
  double backlog_time_integral = 0.0;

  // Per-state effective serve rates for the governors that reason about
  // throughput (the oracle): what each state actually serves after the
  // TDP clamp, not its nominal clock.
  std::vector<double> effective_clock;
  effective_clock.reserve(reports_.size());
  for (const PowerReport& report : reports_) {
    effective_clock.push_back(report.effective_clock_frac);
  }

  for (std::size_t i = 0; i < max_slices; ++i) {
    const double t0 = static_cast<double>(i) * slice_s;
    const bool in_timeline = t0 < timeline.duration_s();
    if (!in_timeline && (!drain_backlog || backlog_s <= kBacklogEps)) break;

    // Piecewise-constant timelines are sampled at the midpoint of the
    // slice's in-timeline window, so phase boundaries landing exactly on
    // slice edges stay unambiguous and a final partial slice (duration not
    // a multiple of slice_s — the norm for trace-driven replay) still sees
    // its load instead of sampling past the end.
    const double covered_s =
        in_timeline ? std::min(slice_s, timeline.duration_s() - t0) : 0.0;
    const double offered =
        covered_s > 0.0 ? timeline.offered_at(t0 + 0.5 * covered_s) : 0.0;

    GovernorInput input;
    input.t_s = t0;
    input.slice_s = slice_s;
    input.utilization = last_util;
    input.offered_next = offered;
    input.backlog_s = backlog_s;
    input.pstate = pstate;
    input.effective_clock = effective_clock;
    const int next = table_.clamp_index(governor.decide(input, table_));
    // The first decision seeds the machine (the device "boots" into the
    // governor's choice); only subsequent changes are transitions, so a
    // pinned fixed(p) governor reports zero.
    if (i > 0 && next != pstate) ++result.transitions;
    pstate = next;

    const PowerReport& report =
        reports_[static_cast<std::size_t>(pstate)];
    const double eff_clock = std::max(report.effective_clock_frac, 1e-6);

    // Work arrives only over the slice's in-timeline window (equal to
    // slice_s everywhere except a trailing partial slice).
    const double arriving = offered * covered_s;  // boost-seconds of work
    const double wanted = backlog_s + arriving;
    // Busy wall time first: a saturated slice is exactly slice_s, so the
    // realized utilization is exactly 1.0 (and the slice's power exactly
    // the steady-state total — the degenerate-case bit-identicality).
    const double busy = std::min(slice_s, wanted / eff_clock);
    const double served = std::min(wanted, busy * eff_clock);
    backlog_s = std::max(0.0, wanted - served);
    const double util = busy / slice_s;

    // Idle fraction of the slice sits at the *parked state's* idle floor
    // (its core rail already at the lowered voltage), busy fraction at the
    // state's active steady-state power.
    const double power_w =
        report.total_w * util + report.idle_w * (1.0 - util);

    ReplaySlice slice;
    slice.t_s = t0;
    slice.offered = offered;
    slice.utilization = util;
    slice.pstate = pstate;
    slice.clock_frac = report.effective_clock_frac;
    slice.power_w = power_w;
    slice.backlog_s = backlog_s;
    result.slices.push_back(slice);

    result.energy_j += power_w * slice_s;
    result.peak_power_w = std::max(result.peak_power_w, power_w);
    result.work_offered_s += arriving;
    result.work_completed_s += served;
    if (served > 0.0) result.completion_s = t0 + busy;
    result.backlog_max_s = std::max(result.backlog_max_s, backlog_s);
    backlog_time_integral += backlog_s * slice_s;
    last_util = util;
  }

  // The slice cap fired with work still queued: the summary under-counts
  // the tail, so say so instead of reporting a clean completion.
  result.truncated =
      drain_backlog && backlog_s > kBacklogEps &&
      result.slices.size() >= max_slices;

  result.duration_s =
      static_cast<double>(result.slices.size()) * slice_s;
  if (result.duration_s > 0.0) {
    result.avg_power_w = result.energy_j / result.duration_s;
    result.mean_backlog_s = backlog_time_integral / result.duration_s;
  }
  return result;
}

}  // namespace gpupower::gpusim::dvfs
