// Software IEEE 754 binary16 ("half"), bit-exact with the storage format the
// GPU sees.  The paper converts FP32-generated inputs to FP16 with
// round-to-nearest(-even); all bit statistics (Hamming weight, alignment,
// toggles) are computed on exactly these 16 storage bits, so the software
// type must match hardware representation bit for bit.
#pragma once

#include <cstdint>
#include <limits>

namespace gpupower::numeric {

class float16_t {
 public:
  constexpr float16_t() noexcept = default;

  /// Converts from float with IEEE round-to-nearest-even, handling
  /// subnormals, overflow-to-infinity, and NaN payload preservation.
  explicit float16_t(float value) noexcept : bits_(from_float(value)) {}

  /// Reinterprets raw storage bits as a half value.
  [[nodiscard]] static constexpr float16_t from_bits(std::uint16_t bits) noexcept {
    float16_t h;
    h.bits_ = bits;
    return h;
  }

  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }

  /// Widens to float exactly (every binary16 value is representable).
  [[nodiscard]] float to_float() const noexcept { return to_float_impl(bits_); }
  explicit operator float() const noexcept { return to_float(); }

  [[nodiscard]] constexpr bool is_nan() const noexcept {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  [[nodiscard]] constexpr bool is_inf() const noexcept {
    return (bits_ & 0x7FFFu) == 0x7C00u;
  }
  [[nodiscard]] constexpr bool is_zero() const noexcept {
    return (bits_ & 0x7FFFu) == 0;
  }
  [[nodiscard]] constexpr bool signbit() const noexcept {
    return (bits_ & 0x8000u) != 0;
  }
  [[nodiscard]] constexpr bool is_subnormal() const noexcept {
    return (bits_ & 0x7C00u) == 0 && (bits_ & 0x03FFu) != 0;
  }

  friend constexpr bool operator==(float16_t a, float16_t b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    if (a.is_zero() && b.is_zero()) return true;  // +0 == -0
    return a.bits_ == b.bits_;
  }
  friend bool operator<(float16_t a, float16_t b) noexcept {
    return a.to_float() < b.to_float();
  }

  // Arithmetic routes through float; hardware FP16 units produce correctly
  // rounded binary16 results, which double round-trip through binary32
  // reproduces exactly for single operations (binary32 has enough precision).
  friend float16_t operator+(float16_t a, float16_t b) noexcept {
    return float16_t(a.to_float() + b.to_float());
  }
  friend float16_t operator-(float16_t a, float16_t b) noexcept {
    return float16_t(a.to_float() - b.to_float());
  }
  friend float16_t operator*(float16_t a, float16_t b) noexcept {
    return float16_t(a.to_float() * b.to_float());
  }

  static constexpr int kMantissaBits = 10;
  static constexpr int kExponentBits = 5;
  static constexpr int kBits = 16;

 private:
  [[nodiscard]] static std::uint16_t from_float(float value) noexcept;
  [[nodiscard]] static float to_float_impl(std::uint16_t bits) noexcept;

  std::uint16_t bits_ = 0;
};

static_assert(sizeof(float16_t) == 2, "binary16 storage must be 2 bytes");

}  // namespace gpupower::numeric
