// Campaign DAGs: dependent-scenario graphs run as one study.  A dag spec
// is a set of named nodes; each node either *runs* a scenario/campaign
// document, *reduces* another node's per-point metrics, or *searches* one
// dotted field by deterministic bisection until a predicate on a result
// metric holds.  Nodes reference upstream results with
// `"$ref": "node_name.result.dotted.path"` substitutions — the same
// dotted-path patch machinery campaign axes use, pointed at a finished
// node's result document instead of a literal value.
//
// Spec shape:
//
//   { "scenario": "dag",
//     "name": "provisioning",
//     "nodes": [
//       { "name": "calibrate",
//         "run": { "scenario": "static", "experiment": {...} } },
//       { "name": "capped",
//         "run": { "scenario": "fleet", ..., "cap_w": 0 },
//         "substitutions": [
//           {"field": "cap_w", "$ref": "calibrate.result.power_w"} ] },
//       { "name": "sweep",
//         "run": { "scenario": "campaign", "base": {...}, "axes": [...] } },
//       { "name": "regret",
//         "reduce": { "op": "regret", "over": "sweep",
//                     "baseline": "calibrate", "metric": "power_w" } },
//       { "name": "tightest_cap",
//         "search": { "base": { "scenario": "fleet", ... },
//                     "field": "cap_w", "lo": 60, "hi": 400,
//                     "metric": "backlog_p99_s", "predicate": "<=",
//                     "target": 0.05, "tolerance": 1.0 } } ] }
//
// Each run/search base document must parse stand-alone (substitutions
// override fields that already carry placeholder values — the same
// contract campaign axes have with their base).  A node's result document
// — the `$ref` resolution surface — is:
//
//   run (single)  the scenario_result_to_json document
//   run (campaign)  {"points": [{"label": ..., "result": <doc>}, ...]}
//                   (refs may index arrays numerically: "points.0.result.x")
//   reduce        {"op", "over", "metric", "value",
//                  "points": [{"label", "value"}, ...]}
//   search        {"field", "value", "iterations", "result": <doc of the
//                  accepted point>}
//
// Validation is strict and parse-time wherever possible: unknown keys,
// duplicate node names, `$ref`s naming unknown nodes, and dependency
// cycles all fail with an error naming the offending node and path.
// Execution schedules ready nodes onto the engine worker pool in a
// deterministic topological order (declaration order breaks ties), so a
// dag run is bit-identical to the equivalent hand-sequenced submits and
// shared upstream points dedup through the memory cache and result store
// by canonical key.  `dag.schedule` / `dag.node` obs spans carry the node
// name and canonical key for per-node trace attribution.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/json.hpp"
#include "core/engine.hpp"
#include "core/scenario.hpp"

namespace gpupower::core::dag {

/// A parsed `"$ref": "node.result.dotted.path"` reference.
struct DagRef {
  std::string raw;        ///< the full ref text, for error messages
  std::size_t node = 0;   ///< upstream node index
  std::string path;       ///< path inside the node's result document
};

/// One substitution: patch `field` (dotted path into the node's own
/// document) with the value the ref resolves to at run time.
struct DagSubstitution {
  std::string field;
  DagRef ref;
};

enum class DagNodeKind { kScenario, kCampaign, kReduce, kSearch };

[[nodiscard]] std::string_view name(DagNodeKind kind);

/// A reduce node: fold one metric across an upstream node's points.
/// op "regret" subtracts the baseline node's metric from every point and
/// reports the worst (max) regret as the aggregate value; min | max |
/// mean | sum fold the points directly (no baseline).
struct DagReduce {
  std::string op;
  std::size_t over = 0;      ///< node index whose points are folded
  std::size_t baseline = 0;  ///< single-scenario node (regret only)
  bool has_baseline = false;
  std::string metric;  ///< dotted path into each point's result document
};

/// A search node: deterministic bisection over one dotted field of a
/// single-scenario base document until `metric predicate target` holds,
/// reporting the tightest satisfying value.  The predicate must hold at
/// `hi` (else the search fails immediately, naming the node); bisection
/// narrows [lo, hi] until the interval is within `tolerance`, bounded by
/// `max_iterations` mid evaluations.
struct DagSearch {
  analysis::JsonValue base;
  std::string field;
  double lo = 0.0;
  double hi = 0.0;
  std::string metric;
  std::string predicate;  ///< "<=" or ">="
  double target = 0.0;
  double tolerance = 0.0;
  int max_iterations = 48;
  std::vector<DagSubstitution> substitutions;
};

struct DagNode {
  std::string name;
  DagNodeKind kind = DagNodeKind::kScenario;
  analysis::JsonValue run;  ///< scenario/campaign document (run nodes)
  std::vector<DagSubstitution> substitutions;  ///< run nodes only
  DagReduce reduce;
  DagSearch search;
  std::vector<std::size_t> deps;  ///< sorted unique upstream node indices
};

struct DagSpec {
  std::string name;
  std::vector<DagNode> nodes;      ///< declaration order
  std::vector<std::size_t> order;  ///< deterministic ready-node schedule
};

/// Parses a `"scenario": "dag"` document.  Returns false with `error`
/// naming the offending node/key (e.g. "nodes[2] 'sweep': $ref
/// 'oracle.result.energy_j' references unknown node 'oracle'").
[[nodiscard]] bool parse_dag(const analysis::JsonValue& doc, DagSpec& out,
                             std::string& error);

/// One executed point of a node (a single-scenario node has exactly one;
/// campaign nodes one per grid point; search nodes one per evaluation in
/// evaluation order; reduce nodes none).
struct DagNodePoint {
  std::string label;
  ScenarioConfig config;
  ExperimentEngine::SubmitOutcome outcome =
      ExperimentEngine::SubmitOutcome::kComputed;
  ScenarioResult result;
};

/// A finished node: its points, canonical attribution key, and the result
/// document downstream `$ref`s resolved against.
struct DagNodeRun {
  std::string name;
  DagNodeKind kind = DagNodeKind::kScenario;
  std::string key;  ///< canonical scenario key (synthetic for reduce)
  std::vector<DagNodePoint> points;
  analysis::JsonValue doc;  ///< the node's result document
};

/// A finished dag run, nodes in declaration order.
struct DagRun {
  std::vector<DagNodeRun> nodes;
};

/// Invoked once per node as it finalises (deterministic order: a function
/// of the graph structure alone, independent of worker count).
using DagNodeCallback = std::function<void(const DagNodeRun&)>;

/// Executes the dag: schedules ready run-nodes onto the engine in `order`
/// as their dependencies retire, resolves `$ref` substitutions against
/// finished nodes, and runs reduce/search nodes inline.  Returns false
/// with `error` naming the node on unresolvable refs, failed re-parses,
/// or non-convergent searches.  Engine worker exceptions propagate.
[[nodiscard]] bool run_dag(ExperimentEngine& engine, const DagSpec& spec,
                           DagRun& out, std::string& error,
                           const DagNodeCallback& on_node = {});

}  // namespace gpupower::core::dag
