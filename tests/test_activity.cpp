#include "gpusim/activity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "patterns/distributions.hpp"

namespace gpupower::gpusim {
namespace {

using gemm::GemmProblem;
using gemm::Matrix;
using gemm::TileConfig;
using gpupower::numeric::DType;
using gpupower::numeric::float16_t;

template <typename T>
Matrix<T> random_matrix(std::size_t n, std::uint64_t seed) {
  return gemm::materialize<T>(
      patterns::gaussian_fill(n * n, 0.0, 210.0, seed), n, n);
}

TEST(ActivityCounters, ZeroMatricesProduceNoDataActivity) {
  const std::size_t n = 64;
  Matrix<float16_t> a(n, n), b(n, n);  // all zeros
  const auto est = estimate_activity(GemmProblem::square(n), a, b,
                                     TileConfig::for_dtype(DType::kFP16));
  EXPECT_EQ(est.totals.fetch_toggles, 0u);
  EXPECT_EQ(est.totals.operand_toggles, 0u);
  EXPECT_EQ(est.totals.fetch_weight, 0u);
  EXPECT_EQ(est.totals.mult_pp, 0u);
  EXPECT_EQ(est.totals.exponent_bits, 0u);
  EXPECT_EQ(est.totals.acc_toggles, 0u);
  // But the machine still moved words and issued MACs.
  EXPECT_GT(est.totals.fetch_words, 0u);
  EXPECT_EQ(est.totals.macs, n * n * n);
}

TEST(ActivityCounters, ConstantMatricesToggleOnlyAtBoundaries) {
  const std::size_t n = 64;
  Matrix<float16_t> a(n, n), b(n, n);
  a.fill(float16_t(2.5f));
  b.fill(float16_t(2.5f));
  const auto est = estimate_activity(GemmProblem::square(n), a, b,
                                     TileConfig::for_dtype(DType::kFP16));
  // Identical words back to back: zero toggles after the first word, and
  // zero multiplier transitions after the first MAC.
  const int word_bits = 16;
  EXPECT_LE(est.totals.fetch_toggles, static_cast<std::uint64_t>(word_bits));
  EXPECT_LE(est.totals.operand_toggles, static_cast<std::uint64_t>(word_bits));
  // Weight accumulates for every word regardless.
  EXPECT_GT(est.totals.fetch_weight, 0u);
}

TEST(ActivityCounters, RandomDataTogglesHeavily) {
  const std::size_t n = 64;
  const auto a = random_matrix<float16_t>(n, 1);
  const auto b = random_matrix<float16_t>(n, 2);
  const auto est = estimate_activity(GemmProblem::square(n), a, b,
                                     TileConfig::for_dtype(DType::kFP16));
  // Random FP16 words differ in ~6-8 bits on average.
  const double per_word = static_cast<double>(est.totals.operand_toggles) /
                          static_cast<double>(est.totals.operand_words);
  EXPECT_GT(per_word, 4.0);
  EXPECT_LT(per_word, 10.0);
}

TEST(ActivityCounters, SortedInputsToggleLessThanRandom) {
  const std::size_t n = 64;
  auto values = patterns::gaussian_fill(n * n, 0.0, 210.0, 1);
  auto sorted_values = values;
  std::sort(sorted_values.begin(), sorted_values.end());
  const auto random_a = gemm::materialize<float16_t>(values, n, n);
  const auto sorted_a = gemm::materialize<float16_t>(sorted_values, n, n);

  const auto config = TileConfig::for_dtype(DType::kFP16);
  const auto est_random =
      estimate_activity(GemmProblem::square(n), random_a, random_a, config);
  const auto est_sorted =
      estimate_activity(GemmProblem::square(n), sorted_a, sorted_a, config);
  EXPECT_LT(est_sorted.totals.operand_toggles,
            est_random.totals.operand_toggles);
  EXPECT_LT(est_sorted.totals.mult_pp, est_random.totals.mult_pp);
}

TEST(ActivityTotals, AccumulateAndScale) {
  ActivityTotals a;
  a.macs = 10;
  a.mult_pp = 100;
  ActivityTotals b;
  b.macs = 5;
  b.mult_pp = 50;
  a += b;
  EXPECT_EQ(a.macs, 15u);
  EXPECT_EQ(a.mult_pp, 150u);
  a.scale_by(2.0);
  EXPECT_EQ(a.macs, 30u);
  EXPECT_EQ(a.mult_pp, 300u);
}

struct SamplingCase {
  std::size_t max_tiles;
  double k_fraction;
};

class SampledVsExact : public ::testing::TestWithParam<SamplingCase> {};

TEST_P(SampledVsExact, EstimatesWithinTolerance) {
  // Property: for statistically homogeneous inputs, the sampled estimate of
  // every data-dependent counter stays within ~10% of the exact walk.
  const std::size_t n = 192;
  const auto a = random_matrix<float16_t>(n, 1);
  const auto b = random_matrix<float16_t>(n, 2);
  const auto config = TileConfig::for_dtype(DType::kFP16);
  const auto problem = GemmProblem::square(n);

  const auto exact = estimate_activity(problem, a, b, config);
  SamplingPlan plan;
  plan.max_tiles = GetParam().max_tiles;
  plan.k_fraction = GetParam().k_fraction;
  const auto sampled = estimate_activity(problem, a, b, config, plan);

  const auto within = [](std::uint64_t s, std::uint64_t e, double tol) {
    return std::fabs(static_cast<double>(s) - static_cast<double>(e)) <=
           tol * static_cast<double>(e);
  };
  EXPECT_TRUE(within(sampled.totals.operand_toggles,
                     exact.totals.operand_toggles, 0.10));
  EXPECT_TRUE(within(sampled.totals.mult_pp, exact.totals.mult_pp, 0.10));
  EXPECT_TRUE(within(sampled.totals.acc_toggles, exact.totals.acc_toggles,
                     0.10));
  EXPECT_TRUE(within(sampled.totals.macs, exact.totals.macs, 0.10));
}

INSTANTIATE_TEST_SUITE_P(Plans, SampledVsExact,
                         ::testing::Values(SamplingCase{16, 1.0},
                                           SamplingCase{8, 0.5},
                                           SamplingCase{4, 0.5},
                                           SamplingCase{16, 0.25}));

TEST(Sampling, ExactPlanWalksEveryTile) {
  const std::size_t n = 256;
  const auto a = random_matrix<float16_t>(n, 1);
  const auto b = random_matrix<float16_t>(n, 2);
  const auto est = estimate_activity(GemmProblem::square(n), a, b,
                                     TileConfig::for_dtype(DType::kFP16));
  EXPECT_FALSE(est.sampled);
  EXPECT_EQ(est.tiles_walked, est.tiles_total);
  EXPECT_DOUBLE_EQ(est.k_coverage, 1.0);
  EXPECT_EQ(est.totals.macs, n * n * n);
}

// --- batched bit-plane kernel parity -------------------------------------
//
// The acceptance criterion for the fast path: ActivityTotals from the
// batched kernel are bit-identical to the per-element observer walk, for
// every dtype (SIMT and tensor-core datapaths), exact and sampled plans,
// both B layouts, and ragged tile/K edges.

void expect_identical_totals(const ActivityEstimate& batched,
                             const ActivityEstimate& observer) {
  // Whole-struct equality covers counter fields added later; the per-field
  // checks below localise a failure.
  EXPECT_TRUE(batched.totals == observer.totals);
  EXPECT_EQ(batched.totals.fetch_words, observer.totals.fetch_words);
  EXPECT_EQ(batched.totals.fetch_toggles, observer.totals.fetch_toggles);
  EXPECT_EQ(batched.totals.fetch_weight, observer.totals.fetch_weight);
  EXPECT_EQ(batched.totals.operand_words, observer.totals.operand_words);
  EXPECT_EQ(batched.totals.operand_toggles, observer.totals.operand_toggles);
  EXPECT_EQ(batched.totals.operand_weight, observer.totals.operand_weight);
  EXPECT_EQ(batched.totals.mult_pp, observer.totals.mult_pp);
  EXPECT_EQ(batched.totals.exponent_bits, observer.totals.exponent_bits);
  EXPECT_EQ(batched.totals.acc_updates, observer.totals.acc_updates);
  EXPECT_EQ(batched.totals.acc_toggles, observer.totals.acc_toggles);
  EXPECT_EQ(batched.totals.macs, observer.totals.macs);
  EXPECT_EQ(batched.sampled, observer.sampled);
  EXPECT_EQ(batched.tiles_walked, observer.tiles_walked);
  EXPECT_EQ(batched.tiles_total, observer.tiles_total);
  EXPECT_DOUBLE_EQ(batched.k_coverage, observer.k_coverage);
}

template <typename T>
void run_parity_case(DType dtype, bool transpose_b) {
  // n = 150 leaves ragged edges at every level: threadblock tiles (128 +
  // 22), K-slices, and MMA fragment K-segments.
  const std::size_t n = 150;
  auto values = patterns::gaussian_fill(n * n, 0.0, 210.0, 7);
  // Sprinkle exact zeros so the multiplier/exponent zero gating is hit.
  for (std::size_t i = 0; i < values.size(); i += 13) values[i] = 0.0f;
  const auto a = gemm::materialize<T>(values, n, n);
  const auto b = gemm::materialize<T>(
      patterns::gaussian_fill(n * n, 0.0, 210.0, 8), n, n);
  GemmProblem problem = GemmProblem::square(n, transpose_b);
  const auto config = TileConfig::for_dtype(dtype);

  const SamplingPlan plans[] = {SamplingPlan::exact(), SamplingPlan::fast(16),
                                SamplingPlan{8, 0.5, 0x5EEDu},
                                SamplingPlan{12, 0.25, 0x5EEDu}};
  for (const SamplingPlan& plan : plans) {
    const auto batched = estimate_activity(problem, a, b, config, plan,
                                           ActivityBackend::kBatched);
    const auto observer = estimate_activity(problem, a, b, config, plan,
                                            ActivityBackend::kObserver);
    expect_identical_totals(batched, observer);
  }
}

TEST(BitPlaneParity, Fp32SimtMatchesObserverBitwise) {
  run_parity_case<float>(DType::kFP32, true);
  run_parity_case<float>(DType::kFP32, false);
}

TEST(BitPlaneParity, Fp16SimtMatchesObserverBitwise) {
  run_parity_case<float16_t>(DType::kFP16, true);
  run_parity_case<float16_t>(DType::kFP16, false);
}

TEST(BitPlaneParity, Fp16TensorCoreMatchesObserverBitwise) {
  run_parity_case<float16_t>(DType::kFP16T, true);
  run_parity_case<float16_t>(DType::kFP16T, false);
}

TEST(BitPlaneParity, Int8TensorCoreMatchesObserverBitwise) {
  run_parity_case<gpupower::numeric::int8_value_t>(DType::kINT8, true);
  run_parity_case<gpupower::numeric::int8_value_t>(DType::kINT8, false);
}

// --- port-state persistence ----------------------------------------------

TEST(ActivityCounters, PortStatePersistsAcrossTiles) {
  // The last word driven on each bus must carry over between tiles, like
  // the physical wires: the first word of tile 2 toggles against the last
  // word of tile 1, not against zero.
  const std::size_t n = 64;
  const auto a = random_matrix<float16_t>(n, 3);
  const auto b = random_matrix<float16_t>(n, 4);
  const auto problem = GemmProblem::square(n);
  const auto config = TileConfig::for_dtype(DType::kFP16);
  // Two half-height tiles covering the output.
  const gemm::TileCoord t1{0, 0, n / 2, n};
  const gemm::TileCoord t2{n / 2, 0, n / 2, n};

  ActivityCounters chained;
  std::vector<float> acc(t1.rows * t1.cols, 0.0f);
  gemm::process_tile(problem, a, b, t1, config, acc, chained);
  const PortState mid = chained.port_state();
  // Port state after tile 1 is the last word each stream drove; never all
  // zeros for random data.
  EXPECT_NE(mid.last_fetch_a, 0u);
  EXPECT_NE(mid.last_operand_a, 0u);
  acc.assign(t2.rows * t2.cols, 0.0f);
  gemm::process_tile(problem, a, b, t2, config, acc, chained);

  // A fresh counter for tile 2 alone starts its chains at zero, so the
  // chained walk differs from the sum of independent walks exactly at the
  // tile boundary.
  ActivityCounters fresh1, fresh2;
  acc.assign(t1.rows * t1.cols, 0.0f);
  gemm::process_tile(problem, a, b, t1, config, acc, fresh1);
  acc.assign(t2.rows * t2.cols, 0.0f);
  gemm::process_tile(problem, a, b, t2, config, acc, fresh2);

  EXPECT_EQ(chained.port_state().last_fetch_a,
            fresh2.port_state().last_fetch_a);
  const std::uint64_t independent_sum =
      fresh1.totals().fetch_toggles + fresh2.totals().fetch_toggles;
  EXPECT_NE(chained.totals().fetch_toggles, independent_sum);
  // Words and weight are state-free, so those do add up.
  EXPECT_EQ(chained.totals().fetch_words,
            fresh1.totals().fetch_words + fresh2.totals().fetch_words);
  EXPECT_EQ(chained.totals().fetch_weight,
            fresh1.totals().fetch_weight + fresh2.totals().fetch_weight);
}

// --- sampled-vs-exact scaling bounds -------------------------------------

TEST(Sampling, RespectsTileBudgetAndKCoverage) {
  const std::size_t n = 256;
  const auto a = random_matrix<float16_t>(n, 1);
  const auto b = random_matrix<float16_t>(n, 2);
  const auto config = TileConfig::for_dtype(DType::kFP16);
  SamplingPlan plan;
  plan.max_tiles = 6;
  plan.k_fraction = 0.5;
  const auto est = estimate_activity(GemmProblem::square(n), a, b, config,
                                     plan);
  EXPECT_TRUE(est.sampled);
  EXPECT_LE(est.tiles_walked, plan.max_tiles);
  EXPECT_GT(est.tiles_walked, 0u);
  // K coverage honours the requested fraction up to slice granularity.
  const double slices = std::ceil(static_cast<double>(n) /
                                  static_cast<double>(config.threadblock.k));
  const double slice_frac = 1.0 / slices;
  EXPECT_GE(est.k_coverage, plan.k_fraction - slice_frac);
  EXPECT_LE(est.k_coverage, plan.k_fraction + slice_frac);
}

TEST(Sampling, ScaledCountsApproximateExactStructure) {
  // Structural counters (macs, words) scale back to the full problem within
  // the rounding of tiles_total / tiles_walked and k_coverage.
  const std::size_t n = 256;
  const auto a = random_matrix<float16_t>(n, 1);
  const auto b = random_matrix<float16_t>(n, 2);
  const auto config = TileConfig::for_dtype(DType::kFP16);
  SamplingPlan plan;
  plan.max_tiles = 8;
  plan.k_fraction = 0.5;
  const auto est = estimate_activity(GemmProblem::square(n), a, b, config,
                                     plan);
  const auto exact_macs = static_cast<double>(n) * static_cast<double>(n) *
                          static_cast<double>(n);
  EXPECT_NEAR(static_cast<double>(est.totals.macs) / exact_macs, 1.0, 0.05);
  const auto est_words = static_cast<double>(est.totals.operand_words);
  EXPECT_GT(est_words, 0.0);
  EXPECT_NEAR(est_words / (2.0 * exact_macs), 1.0, 0.05);
}

TEST(Sampling, SmallProblemNeverSamples) {
  // When the grid has fewer quanta than max_tiles, the walk is exhaustive
  // at warp granularity.
  const std::size_t n = 64;
  const auto a = random_matrix<float16_t>(n, 1);
  const auto b = random_matrix<float16_t>(n, 2);
  SamplingPlan plan;
  plan.max_tiles = 1000;
  const auto est = estimate_activity(GemmProblem::square(n), a, b,
                                     TileConfig::for_dtype(DType::kFP16), plan);
  EXPECT_FALSE(est.sampled);
  EXPECT_EQ(est.totals.macs, n * n * n);
}

}  // namespace
}  // namespace gpupower::gpusim
