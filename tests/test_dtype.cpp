#include "numeric/dtype.hpp"

#include <gtest/gtest.h>

namespace gpupower::numeric {
namespace {

TEST(DType, Widths) {
  EXPECT_EQ(bit_width(DType::kFP32), 32);
  EXPECT_EQ(bit_width(DType::kFP16), 16);
  EXPECT_EQ(bit_width(DType::kFP16T), 16);
  EXPECT_EQ(bit_width(DType::kINT8), 8);
  EXPECT_EQ(byte_width(DType::kFP32), 4);
  EXPECT_EQ(byte_width(DType::kINT8), 1);
}

TEST(DType, TensorCoreFlag) {
  EXPECT_FALSE(uses_tensor_cores(DType::kFP32));
  EXPECT_FALSE(uses_tensor_cores(DType::kFP16));
  EXPECT_TRUE(uses_tensor_cores(DType::kFP16T));
  EXPECT_TRUE(uses_tensor_cores(DType::kINT8));
}

TEST(DType, FloatingPointFlag) {
  EXPECT_TRUE(is_floating_point(DType::kFP32));
  EXPECT_TRUE(is_floating_point(DType::kFP16T));
  EXPECT_FALSE(is_floating_point(DType::kINT8));
}

TEST(DType, Names) {
  EXPECT_EQ(name(DType::kFP32), "FP32");
  EXPECT_EQ(name(DType::kFP16), "FP16");
  EXPECT_EQ(name(DType::kFP16T), "FP16-T");
  EXPECT_EQ(name(DType::kINT8), "INT8");
}

TEST(DType, PaperDefaultSigma) {
  // Section III: sigma 210 for FP setups, 25 for INT8.
  EXPECT_DOUBLE_EQ(default_sigma(DType::kFP32), 210.0);
  EXPECT_DOUBLE_EQ(default_sigma(DType::kFP16), 210.0);
  EXPECT_DOUBLE_EQ(default_sigma(DType::kFP16T), 210.0);
  EXPECT_DOUBLE_EQ(default_sigma(DType::kINT8), 25.0);
}

struct ParseCase {
  const char* text;
  DType expected;
};

class DTypeParse : public ::testing::TestWithParam<ParseCase> {};

TEST_P(DTypeParse, Parses) {
  DType out{};
  ASSERT_TRUE(parse_dtype(GetParam().text, out)) << GetParam().text;
  EXPECT_EQ(out, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Spellings, DTypeParse,
    ::testing::Values(ParseCase{"fp32", DType::kFP32},
                      ParseCase{"FP32", DType::kFP32},
                      ParseCase{"float", DType::kFP32},
                      ParseCase{"fp16", DType::kFP16},
                      ParseCase{"half", DType::kFP16},
                      ParseCase{"FP16-T", DType::kFP16T},
                      ParseCase{"fp16_t", DType::kFP16T},
                      ParseCase{"fp16tc", DType::kFP16T},
                      ParseCase{"int8", DType::kINT8},
                      ParseCase{"INT8", DType::kINT8},
                      ParseCase{"s8", DType::kINT8}));

TEST(DType, ParseRejectsGarbage) {
  DType out{};
  EXPECT_FALSE(parse_dtype("fp64", out));
  EXPECT_FALSE(parse_dtype("", out));
  EXPECT_FALSE(parse_dtype("tensor", out));
}

}  // namespace
}  // namespace gpupower::numeric
