#include "core/pattern_dsl.hpp"

#include <gtest/gtest.h>

#include "core/figures.hpp"

namespace gpupower::core {
namespace {

TEST(PatternDsl, ParsesGaussianDefaults) {
  const auto result = parse_pattern("gaussian()");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.spec.value, PatternSpec::Value::kGaussian);
  EXPECT_DOUBLE_EQ(result.spec.mean, 0.0);
  EXPECT_LT(result.spec.sigma, 0.0);  // paper default
  EXPECT_TRUE(result.spec.transpose_b);
}

TEST(PatternDsl, ParsesNamedArguments) {
  const auto result = parse_pattern("gaussian(mean=16, sigma=2)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_DOUBLE_EQ(result.spec.mean, 16.0);
  EXPECT_DOUBLE_EQ(result.spec.sigma, 2.0);
}

TEST(PatternDsl, ParsesPositionalArguments) {
  const auto result = parse_pattern("set(4, 0, 210)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.spec.value, PatternSpec::Value::kValueSet);
  EXPECT_EQ(result.spec.set_size, 4u);
  EXPECT_DOUBLE_EQ(result.spec.sigma, 210.0);
}

TEST(PatternDsl, ParsesFullPipeline) {
  const auto result = parse_pattern(
      "gaussian(sigma=210) | sort_rows(40%) | sparsity(25%) | zero_lsb(0.5) "
      "| no_transpose()");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.spec.place, PatternSpec::Place::kSortRows);
  EXPECT_DOUBLE_EQ(result.spec.sort_percent, 40.0);
  EXPECT_DOUBLE_EQ(result.spec.sparsity, 0.25);
  EXPECT_EQ(result.spec.bitop, PatternSpec::BitOp::kZeroLow);
  EXPECT_DOUBLE_EQ(result.spec.bit_fraction, 0.5);
  EXPECT_FALSE(result.spec.transpose_b);
}

TEST(PatternDsl, PercentAndFractionAreEquivalent) {
  const auto a = parse_pattern("gaussian() | sparsity(50%)");
  const auto b = parse_pattern("gaussian() | sparsity(0.5)");
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_DOUBLE_EQ(a.spec.sparsity, b.spec.sparsity);
}

TEST(PatternDsl, WhitespaceInsensitive) {
  const auto a = parse_pattern("  gaussian( sigma = 210 )|full_sort()  ");
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.spec.place, PatternSpec::Place::kFullSort);
}

struct DslError {
  const char* input;
  const char* expect_substring;
};

class PatternDslErrors : public ::testing::TestWithParam<DslError> {};

TEST_P(PatternDslErrors, RejectsWithMessage) {
  const auto result = parse_pattern(GetParam().input);
  EXPECT_FALSE(result.ok) << GetParam().input;
  EXPECT_NE(result.error.find(GetParam().expect_substring), std::string::npos)
      << "got: " << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PatternDslErrors,
    ::testing::Values(
        DslError{"", "empty"},
        DslError{"bogus()", "unknown stage"},
        DslError{"gaussian", "expected '('"},
        DslError{"gaussian(", "expected number"},
        DslError{"gaussian() gaussian()", "expected '|'"},
        DslError{"gaussian() | constant()", "duplicate value-distribution"},
        DslError{"sort_rows()", "needs a percentage"},
        DslError{"sort_rows(150%)", "must be in [0, 100]"},
        DslError{"sparsity(1.5)", "must be in [0, 1]"},
        DslError{"zero_lsb(2)", "must be in [0, 1]"},
        DslError{"gaussian(sigma=-3)", "sigma must be positive"},
        DslError{"full_sort() | sort_rows(10%)", "duplicate placement"},
        DslError{"zero_lsb(0.5) | rand_msb(0.5)", "duplicate bit stage"},
        DslError{"set(size=0)", "set size"}));

TEST(PatternDsl, ErrorPositionPointsAtOffendingStage) {
  const auto result = parse_pattern("gaussian() | bogus()");
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.error_pos, 13u);
}

TEST(PatternDsl, RoundTripsEveryFigureSpec) {
  // Property: every spec in the figure registry survives
  // to_dsl -> parse_pattern unchanged.
  for (const auto fig : kAllFigures) {
    for (const auto& point : figure_sweep(fig)) {
      const std::string dsl = to_dsl(point.spec);
      const auto reparsed = parse_pattern(dsl);
      ASSERT_TRUE(reparsed.ok) << dsl << ": " << reparsed.error;
      const PatternSpec& a = point.spec;
      const PatternSpec& b = reparsed.spec;
      EXPECT_EQ(a.value, b.value) << dsl;
      EXPECT_DOUBLE_EQ(a.mean, b.mean) << dsl;
      if (a.sigma >= 0.0) {
        EXPECT_DOUBLE_EQ(a.sigma, b.sigma) << dsl;
      } else {
        EXPECT_LT(b.sigma, 0.0) << dsl;
      }
      EXPECT_EQ(a.set_size, b.set_size) << dsl;
      EXPECT_EQ(a.place, b.place) << dsl;
      EXPECT_DOUBLE_EQ(a.sort_percent, b.sort_percent) << dsl;
      EXPECT_DOUBLE_EQ(a.sparsity, b.sparsity) << dsl;
      EXPECT_EQ(a.bitop, b.bitop) << dsl;
      EXPECT_DOUBLE_EQ(a.bit_fraction, b.bit_fraction) << dsl;
      EXPECT_EQ(a.transpose_b, b.transpose_b) << dsl;
    }
  }
}

}  // namespace
}  // namespace gpupower::core
