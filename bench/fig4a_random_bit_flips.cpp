// Regenerates fig4a of "Input-Dependent Power Usage in GPUs" (SC'24):
// see core/figures.cpp for the sweep definition.
#include "fig_harness.hpp"

int main() {
  gpupower::bench::run_figure(gpupower::core::FigureId::kFig4aRandomBitFlips);
  return 0;
}
