#include "gpusim/energy_model.hpp"

#include <gtest/gtest.h>

#include "numeric/float16.hpp"

namespace gpupower::gpusim {
namespace {

using gpupower::numeric::float16_t;

TEST(Significand, Fp16HiddenBit) {
  // 1.0 = 0x3C00: mantissa 0, hidden bit set -> 0x400.
  EXPECT_EQ(significand(0x3C00u, 16), 0x400u);
  // 1.5 = 0x3E00: mantissa 0x200 | hidden.
  EXPECT_EQ(significand(0x3E00u, 16), 0x600u);
  // Zero has no hidden bit.
  EXPECT_EQ(significand(0x0000u, 16), 0u);
  EXPECT_EQ(significand(0x8000u, 16), 0u);  // -0
  // Subnormal keeps its mantissa without the hidden bit.
  EXPECT_EQ(significand(0x0001u, 16), 1u);
}

TEST(Significand, Fp32HiddenBit) {
  EXPECT_EQ(significand(0x3F800000u, 32), 0x800000u);  // 1.0f
  EXPECT_EQ(significand(0x00000000u, 32), 0u);
  EXPECT_EQ(significand(0x00000001u, 32), 1u);  // subnormal
}

TEST(Significand, Int8SignMagnitude) {
  EXPECT_EQ(significand(0x7Fu, 8), 127u);   // +127
  EXPECT_EQ(significand(0xFFu, 8), 1u);     // -1 -> |−1| = 1
  EXPECT_EQ(significand(0x80u, 8), 128u);   // -128 -> 128
  EXPECT_EQ(significand(0x00u, 8), 0u);
}

TEST(ExponentActivity, GatedByZeroOperand) {
  const auto one = float16_t(1.0f).bits();
  const auto zero = float16_t(0.0f).bits();
  EXPECT_GT(exponent_activity(one, one, 16), 0u);
  EXPECT_EQ(exponent_activity(one, zero, 16), 0u);
  EXPECT_EQ(exponent_activity(zero, one, 16), 0u);
}

TEST(ExponentActivity, Int8HasNone) {
  EXPECT_EQ(exponent_activity(0x7Fu, 0x7Fu, 8), 0u);
}

TEST(MultiplierSwitching, NoTransitionNoActivity) {
  EXPECT_EQ(multiplier_switching(0x400u, 0x400u, 0x600u, 0x600u), 0u);
}

TEST(MultiplierSwitching, ZeroOperandGatesArray) {
  // New operands both zero: nothing switches regardless of history.
  EXPECT_EQ(multiplier_switching(0u, 0x7FFu, 0u, 0x7FFu), 0u);
}

TEST(MultiplierSwitching, TransitionScalesWithBothOperands) {
  // a flips 2 bits while b holds 3 set bits -> 2*3; b stable.
  const std::uint32_t a_prev = 0b1100u, a_now = 0b0000u;  // HD=2 ... but pc(a_now)=0
  const std::uint32_t b = 0b0111u;                        // pc=3
  EXPECT_EQ(multiplier_switching(a_now, a_prev, b, b), 2u * 3u);
  // Symmetric case.
  EXPECT_EQ(multiplier_switching(b, b, a_now, a_prev), 2u * 3u);
}

TEST(MultiplierSwitching, FirstMacFromColdArray) {
  // From an all-zero array, activity is pc(a)*pc(b)*... = HD(a,0)*pc(b) +
  // HD(b,0)*pc(a) = 2*pc(a)*pc(b).
  const std::uint32_t a = 0b101u, b = 0b11u;
  EXPECT_EQ(multiplier_switching(a, 0, b, 0), 2u * 2u * 2u);
}

TEST(MacActivity, StaticProxyMatchesPopcounts) {
  const auto one = float16_t(1.0f).bits();    // sig 0x400, pc 1
  const auto onep5 = float16_t(1.5f).bits();  // sig 0x600, pc 2
  const auto act = mac_activity(one, onep5, 16);
  EXPECT_EQ(act.pp, 2u);
  EXPECT_GT(act.exp_bits, 0u);
}

TEST(ActivityTotals, ScaleByRoundsToNearest) {
  ActivityTotals t;
  t.macs = 3;
  t.scale_by(1.5);
  EXPECT_EQ(t.macs, 5u);  // 4.5 rounds up
}

TEST(EnergyModel, DefaultsArePositive) {
  const EnergyModel e;
  EXPECT_GT(e.fetch_toggle_pj, 0.0);
  EXPECT_GT(e.operand_toggle_pj, 0.0);
  EXPECT_GT(e.acc_toggle_pj, 0.0);
  EXPECT_GT(e.multiply_pp_simt_pj, 0.0);
  EXPECT_GT(e.multiply_pp_tc_pj, 0.0);
  EXPECT_GT(e.mma_issue_pj, 0.0);
  EXPECT_GT(e.scale, 0.0);
  // Tensor-core arrays must be cheaper per partial product than SIMT FMA.
  EXPECT_LT(e.multiply_pp_tc_pj, e.multiply_pp_simt_pj);
}

}  // namespace
}  // namespace gpupower::gpusim
