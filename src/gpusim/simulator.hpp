// GpuSimulator: the user-facing facade tying together device descriptors,
// the tiled-GEMM activity walk, and the power model.  One call maps to one
// "launch the CUTLASS kernel in a loop and watch DCGM" experiment on the
// paper's testbed.
#pragma once

#include <cassert>
#include <optional>

#include "gemm/matrix.hpp"
#include "gemm/problem.hpp"
#include "gemm/tile_config.hpp"
#include "gpusim/activity.hpp"
#include "gpusim/device.hpp"
#include "gpusim/power.hpp"

namespace gpupower::gpusim {

/// Optional per-instance perturbation modelling the up-to-10 W shifts the
/// paper observed when the Azure VM landed on a different physical GPU
/// (Section III attributes these to process variation).  Disabled by
/// default, matching the paper's mitigation of pinning one VM instance.
struct ProcessVariation {
  double sigma_fraction = 0.02;  ///< ~2% sigma on energy scale and idle power
  std::uint64_t instance = 0;    ///< which physical GPU the "VM" landed on
  /// When set, every seed replica of an experiment derives its own instance
  /// from (instance, seed index) — each seed's "VM" lands on a different
  /// physical GPU, the paper's VM-relanding study.  Off by default: all
  /// seeds share `instance`, bit-identical to the historical behaviour.
  bool per_seed = false;
};

struct SimOptions {
  SamplingPlan sampling = SamplingPlan::exact();
  std::optional<ProcessVariation> variation;
  /// Which activity implementation walks the GEMM.  The batched bit-plane
  /// kernel is the default; the observer walk is the bit-identical
  /// reference (parity tests, micro benchmark).
  ActivityBackend activity_backend = ActivityBackend::kBatched;
};

class GpuSimulator {
 public:
  explicit GpuSimulator(GpuModel model, SimOptions options = {});

  /// Simulates one steady-state GEMM iteration: walks the tiled kernel's
  /// operand streams over the given inputs and evaluates the power model.
  /// `dtype` selects the kernel configuration (FP16 vs FP16-T share the
  /// element type but run different datapaths); T must match its storage.
  template <typename T>
  [[nodiscard]] PowerReport run_gemm(const gemm::GemmProblem& problem,
                                     gpupower::numeric::DType dtype,
                                     const gemm::Matrix<T>& a,
                                     const gemm::Matrix<T>& b_storage) const {
    assert(gpupower::numeric::scalar_traits<T>::kBits ==
           gpupower::numeric::bit_width(dtype));
    const gemm::TileConfig config = gemm::TileConfig::for_dtype(dtype);
    const ActivityEstimate est =
        estimate_activity(problem, a, b_storage, config, options_.sampling,
                          options_.activity_backend);
    return PowerCalculator(dev_).evaluate(problem, dtype, est.totals);
  }

  /// Activity-only entry point (used by the analysis benches).
  template <typename T>
  [[nodiscard]] ActivityEstimate activity(const gemm::GemmProblem& problem,
                                          gpupower::numeric::DType dtype,
                                          const gemm::Matrix<T>& a,
                                          const gemm::Matrix<T>& b) const {
    return estimate_activity(problem, a, b, gemm::TileConfig::for_dtype(dtype),
                             options_.sampling, options_.activity_backend);
  }

  [[nodiscard]] const DeviceDescriptor& descriptor() const noexcept {
    return dev_;
  }
  [[nodiscard]] const SimOptions& options() const noexcept { return options_; }

 private:
  DeviceDescriptor dev_;
  SimOptions options_;
};

}  // namespace gpupower::gpusim
