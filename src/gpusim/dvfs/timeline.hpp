// Workload timelines: the offered-load schedule the DVFS replayer steps a
// governor through.  A timeline is a piecewise-constant utilization
// function — each phase offers a fraction of the device's boost-clock
// capacity for a duration — built three ways:
//
//  - programmatically (constant / burst / ramp / idle factories),
//  - from the timeline DSL (same stage-pipe syntax as the pattern DSL):
//      "burst(period=0.2, duty=30%, high=100%, low=5%, dur=2)"
//      "constant(util=60%, dur=1) | idle(dur=0.5) | ramp(from=0, to=1, steps=8, dur=1)"
//    stages concatenate in time,
//  - from a recorded telemetry::UtilTrace (trace-driven replay): each
//    sample becomes one phase spanning its sampling window.
//
// Offered load is demand, not consumption: a governor parked in a deep
// P-state serves a 0.9-utilization phase slower than it arrives and builds
// backlog, which is exactly the latency cost the replayer charges it.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/trace.hpp"

namespace gpupower::gpusim::dvfs {

struct TimelinePhase {
  double duration_s = 0.0;
  double utilization = 0.0;  ///< offered load in [0, 1] of boost capacity
  /// Input-pattern override for the phase: an index into the owning
  /// config's phase-pattern list (DvfsConfig::phase_patterns), so activity
  /// — not just load — varies over time.  -1 (the default) keeps the
  /// experiment's base pattern, which is bit-identical to the behaviour
  /// before phases carried patterns.
  int pattern = -1;
};

class WorkloadTimeline {
 public:
  WorkloadTimeline() = default;
  explicit WorkloadTimeline(std::vector<TimelinePhase> phases);

  // --- factories ----------------------------------------------------------
  [[nodiscard]] static WorkloadTimeline constant(double utilization,
                                                 double duration_s,
                                                 int pattern = -1);
  [[nodiscard]] static WorkloadTimeline idle(double duration_s);
  /// Square wave: `duty` of each period at `high`, the rest at `low`.
  [[nodiscard]] static WorkloadTimeline burst(double period_s, double duty,
                                              double high, double low,
                                              double duration_s);
  /// `steps` equal-duration plateaus linearly interpolating `from` -> `to`.
  [[nodiscard]] static WorkloadTimeline ramp(double from, double to,
                                             int steps, double duration_s);
  /// Trace-driven replay: sample i spans [t_{i-1}, t_i) (the first sample's
  /// window starts at 0), carrying its recorded utilization.
  [[nodiscard]] static WorkloadTimeline from_trace(
      const telemetry::UtilTrace& trace);

  /// Appends another timeline after this one (the DSL's '|' operator).
  WorkloadTimeline& append(const WorkloadTimeline& other);

  [[nodiscard]] const std::vector<TimelinePhase>& phases() const noexcept {
    return phases_;
  }
  [[nodiscard]] bool empty() const noexcept { return phases_.empty(); }
  [[nodiscard]] double duration_s() const noexcept { return duration_s_; }

  /// Offered load at time t (0 past the end).
  [[nodiscard]] double offered_at(double t_s) const noexcept;

  /// Phase-pattern index at time t (-1 past the end or when the phase
  /// carries no override).
  [[nodiscard]] int pattern_at(double t_s) const noexcept;

  /// Largest phase-pattern index any phase references, -1 when none do —
  /// the replica runner sizes its activity-variant table from this, and a
  /// config validates it against its phase-pattern list.
  [[nodiscard]] int max_pattern_index() const noexcept;

  /// Samples the schedule every `period_s` (window-end timestamps), the
  /// shape from_trace inverts: aligned periods round-trip exactly.
  [[nodiscard]] telemetry::UtilTrace to_util_trace(double period_s) const;

 private:
  std::vector<TimelinePhase> phases_;
  std::vector<double> ends_;  ///< cumulative phase end times
  double duration_s_ = 0.0;
};

struct TimelineParseResult {
  bool ok = false;
  WorkloadTimeline timeline;
  std::string error;          ///< empty when ok
  std::size_t error_pos = 0;  ///< byte offset of the error in the input
};

/// Parses the timeline DSL described above.  Never throws.
[[nodiscard]] TimelineParseResult parse_timeline(std::string_view text);

/// Canonical phase-list form — a pipe of full-precision constant() stages,
/// parseable back and stable, used for cache keys.  (Factory structure is
/// not preserved; two DSLs producing the same phases serialise
/// identically.)
[[nodiscard]] std::string to_dsl(const WorkloadTimeline& timeline);

}  // namespace gpupower::gpusim::dvfs
