// ExperimentRunner: reproduces the paper's measurement protocol end to end.
// For each seed replica it builds the spec'd inputs, simulates the GEMM
// kernel's power, replays the run through the DCGM-like sampler (100 ms
// samples, 500 ms warmup trim), and averages the reported power across
// seeds — exactly the pipeline behind every figure in Section IV.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>

#include "core/pattern_spec.hpp"
#include "gpusim/power.hpp"
#include "gpusim/simulator.hpp"
#include "telemetry/sampler.hpp"

namespace gpupower::core {

struct ExperimentConfig {
  gpupower::gpusim::GpuModel gpu = gpupower::gpusim::GpuModel::kA100PCIe;
  gpupower::numeric::DType dtype = gpupower::numeric::DType::kFP16;
  std::size_t n = 2048;
  PatternSpec pattern;
  int seeds = 10;           ///< paper: 10 seeds per configuration
  std::size_t iterations = 0;  ///< 0 = paper default (20k FP16-T, 10k others)
  std::uint64_t base_seed = 42;
  gpupower::gpusim::SamplingPlan sampling;  ///< exact by default
  telemetry::SamplerConfig sampler;
  std::optional<gpupower::gpusim::ProcessVariation> variation;

  [[nodiscard]] std::size_t effective_iterations() const noexcept {
    if (iterations != 0) return iterations;
    return dtype == gpupower::numeric::DType::kFP16T ? 20000 : 10000;
  }
};

struct ExperimentResult {
  double power_w = 0.0;        ///< mean of per-seed DCGM-style averages
  double power_std_w = 0.0;    ///< across seeds
  double iteration_s = 0.0;    ///< realized (post-throttle) iteration time, mean across seeds
  double energy_per_iter_j = 0.0;  ///< mean across seeds
  double alignment = 0.0;      ///< Fig. 8 feature, averaged across seeds
  double weight_fraction = 0.0;
  gpupower::gpusim::RailPower rails;  ///< averaged across seeds
  bool throttled = false;      ///< true if any seed replica throttled
  double clock_frac = 1.0;     ///< mean across seeds
  int seeds = 0;
};

/// One seed replica's raw measurements, before the across-seed reduction.
/// Replicas derive independent RNG streams from (base_seed, seed_index), so
/// they can be computed in any order — or concurrently — and reduced
/// afterwards with results bit-identical to the serial loop.
struct SeedReplicaResult {
  double power_w = 0.0;
  double alignment = 0.0;
  double weight_fraction = 0.0;
  gpupower::gpusim::RailPower rails;
  double iteration_s = 0.0;
  double energy_per_iter_j = 0.0;
  bool throttled = false;
  double clock_frac = 1.0;
};

/// Calls `f` with a std::type_identity tag for the storage type backing
/// `dtype` (FP16 and FP16-T share float16 storage) — the single
/// dtype-to-template dispatch both the classic replica path and the DVFS
/// pipeline use, so the mapping cannot drift between them.
template <typename F>
decltype(auto) with_storage_type(gpupower::numeric::DType dtype, F&& f) {
  using gpupower::numeric::DType;
  switch (dtype) {
    case DType::kFP32:
      break;
    case DType::kFP16:
    case DType::kFP16T:
      return f(std::type_identity<gpupower::numeric::float16_t>{});
    case DType::kINT8:
      return f(std::type_identity<gpupower::numeric::int8_value_t>{});
  }
  return f(std::type_identity<float>{});
}

/// Simulator options for one seed replica: the experiment's sampling plan
/// and variation, with the per-seed variation instance derived when
/// `variation->per_seed` is set (shared by the DVFS timeline pipeline).
[[nodiscard]] gpupower::gpusim::SimOptions replica_sim_options(
    const ExperimentConfig& config, int seed_index);

/// Computes one seed replica (seed_index in [0, config.seeds)).  Pure and
/// thread-safe: no shared mutable state, deterministic for its arguments.
[[nodiscard]] SeedReplicaResult run_seed_replica(const ExperimentConfig& config,
                                                 int seed_index);

/// Folds per-seed replicas (in seed order) into the reported result with the
/// exact accumulation order of the historical serial loop.
[[nodiscard]] ExperimentResult reduce_replicas(
    const ExperimentConfig& config, std::span<const SeedReplicaResult> replicas);

/// Runs one experiment configuration (all seed replicas), serially.
///
/// Deprecated: prefer `ExperimentEngine::submit` (core/engine.hpp), which
/// batches, caches, and parallelises while staying bit-identical to this
/// path.  Kept as the single-call serial reference implementation.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace gpupower::core
