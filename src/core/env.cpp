#include "core/env.hpp"

#include <cstdio>
#include <cstdlib>

namespace gpupower::core {
namespace {

[[noreturn]] void die(const char* name, const char* raw, const char* expect) {
  std::fprintf(stderr, "gpupower: invalid %s='%s' (expected %s)\n", name, raw,
               expect);
  std::exit(2);
}

long read_long(const char* name, long fallback, long min, long max,
               const char* expect) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || v < min || v > max) {
    die(name, raw, expect);
  }
  return v;
}

double read_double(const char* name, double fallback, double min, double max,
                   const char* expect) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || !(v > min) || !(v <= max)) {
    die(name, raw, expect);
  }
  return v;
}

}  // namespace

BenchEnv read_bench_env() {
  BenchEnv env;
  env.n = static_cast<std::size_t>(read_long(
      "GPUPOWER_N", 512, 64, 65536, "integer matrix size in [64, 65536]"));
  env.seeds = static_cast<int>(read_long("GPUPOWER_SEEDS", 2, 1, 10000,
                                         "integer seed count in [1, 10000]"));
  env.tiles = static_cast<std::size_t>(
      read_long("GPUPOWER_TILES", 12, 0, 1000000,
                "integer tile budget in [0, 1000000]; 0 = exact walk"));
  env.k_fraction = read_double("GPUPOWER_KFRAC", 0.5, 0.0, 1.0,
                               "fraction in (0, 1]");
  env.workers = static_cast<int>(
      read_long("GPUPOWER_WORKERS", 0, 0, 256,
                "worker count in [0, 256]; 0 = hardware concurrency"));
  env.csv = std::getenv("GPUPOWER_CSV") != nullptr;
  return env;
}

}  // namespace gpupower::core
