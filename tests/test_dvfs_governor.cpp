// DVFS governor + P-state table suite: table construction from device
// descriptors, the governor DSL round trip, and — the core of it — the
// PowerMizer-style utilization governor's threshold/hysteresis state
// machine, transition by transition.
#include "gpusim/dvfs/governor.hpp"

#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "gpusim/dvfs/pstate.hpp"

namespace gpupower::gpusim::dvfs {
namespace {

const DeviceDescriptor& a100() { return device(GpuModel::kA100PCIe); }

TEST(PStateTable, BoostOnlyIsTheExactBoostPoint) {
  const PStateTable table = PStateTable::boost_only(a100());
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].clock_frac, 1.0);
  EXPECT_EQ(table[0].voltage_scale, 1.0);
  EXPECT_DOUBLE_EQ(table[0].clock_ghz, a100().boost_clock_ghz);
}

TEST(PStateTable, ForDeviceSpansBoostToFloorMonotonically) {
  const PStateTable table = PStateTable::for_device(a100(), 5, 0.40, 0.65);
  ASSERT_EQ(table.size(), 5u);
  // P0 is exactly boost — the degenerate-case guarantee.
  EXPECT_EQ(table.boost().clock_frac, 1.0);
  EXPECT_EQ(table.boost().voltage_scale, 1.0);
  EXPECT_DOUBLE_EQ(table.deepest().clock_frac, 0.40);
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(table[i].clock_frac, table[i - 1].clock_frac);
    EXPECT_LT(table[i].voltage_scale, table[i - 1].voltage_scale);
    EXPECT_EQ(table[i].index, static_cast<int>(i));
  }
  // Voltage follows the linear f-V curve down to the floor.
  EXPECT_NEAR(table.deepest().voltage_scale, 0.65 + 0.35 * 0.40, 1e-12);
}

TEST(PStateTable, ClampIndex) {
  const PStateTable table = PStateTable::for_device(a100(), 4);
  EXPECT_EQ(table.clamp_index(-3), 0);
  EXPECT_EQ(table.clamp_index(2), 2);
  EXPECT_EQ(table.clamp_index(99), 3);
}

// --- governor DSL ---------------------------------------------------------

TEST(GovernorDsl, ParsesEveryPolicy) {
  auto fixed = parse_governor("fixed(2)");
  ASSERT_TRUE(fixed.ok) << fixed.error;
  EXPECT_EQ(fixed.config.policy, GovernorConfig::Policy::kFixed);
  EXPECT_EQ(fixed.config.fixed_pstate, 2);

  auto bare_fixed = parse_governor("fixed()");
  ASSERT_TRUE(bare_fixed.ok) << bare_fixed.error;
  EXPECT_EQ(bare_fixed.config.fixed_pstate, 0);

  auto util = parse_governor(
      " utilization( up=85%, down=20%, up_hold=0.02, down_hold=0.5 ) ");
  ASSERT_TRUE(util.ok) << util.error;
  EXPECT_EQ(util.config.policy, GovernorConfig::Policy::kUtilization);
  EXPECT_DOUBLE_EQ(util.config.boost_util, 0.85);
  EXPECT_DOUBLE_EQ(util.config.low_util, 0.20);
  EXPECT_DOUBLE_EQ(util.config.boost_hold_s, 0.02);
  EXPECT_DOUBLE_EQ(util.config.low_hold_s, 0.5);

  auto oracle = parse_governor("oracle()");
  ASSERT_TRUE(oracle.ok) << oracle.error;
  EXPECT_EQ(oracle.config.policy, GovernorConfig::Policy::kOracle);
}

TEST(GovernorDsl, OmittedKeysKeepDefaults) {
  const GovernorConfig defaults;
  auto util = parse_governor("utilization(up=90%)");
  ASSERT_TRUE(util.ok) << util.error;
  EXPECT_DOUBLE_EQ(util.config.boost_util, 0.90);
  EXPECT_DOUBLE_EQ(util.config.low_util, defaults.low_util);
  EXPECT_DOUBLE_EQ(util.config.boost_hold_s, defaults.boost_hold_s);
  EXPECT_DOUBLE_EQ(util.config.low_hold_s, defaults.low_hold_s);
}

TEST(GovernorDsl, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_governor("").ok);
  EXPECT_FALSE(parse_governor("turbo()").ok);
  EXPECT_FALSE(parse_governor("fixed(-1)").ok);
  EXPECT_FALSE(parse_governor("oracle(1)").ok);
  EXPECT_FALSE(parse_governor("utilization(warp=9)").ok);
  // up < down is a contradiction the parser rejects.
  EXPECT_FALSE(parse_governor("utilization(up=20%, down=80%)").ok);
  EXPECT_FALSE(parse_governor("utilization(up=150%)").ok);
  EXPECT_FALSE(parse_governor("fixed(0) trailing").ok);
  const auto failed = parse_governor("utilization(up=80%, dwn=30%)");
  EXPECT_FALSE(failed.ok);
  EXPECT_NE(failed.error.find("dwn"), std::string::npos);
}

TEST(GovernorDsl, RoundTripsThroughToDsl) {
  for (const char* spec :
       {"fixed(3)", "oracle()",
        "utilization(up=75%, down=25%, up_hold=0.015, down_hold=0.2)"}) {
    const auto first = parse_governor(spec);
    ASSERT_TRUE(first.ok) << first.error;
    const auto second = parse_governor(to_dsl(first.config));
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(first.config, second.config) << spec;
  }
}

// --- governor state machines ----------------------------------------------

GovernorInput input_at(double t_s, double util, int pstate,
                       double slice_s = 0.01) {
  GovernorInput input;
  input.t_s = t_s;
  input.slice_s = slice_s;
  input.utilization = util;
  input.offered_next = util;
  input.pstate = pstate;
  return input;
}

TEST(FixedGovernor, PinsItsStateClamped) {
  const PStateTable table = PStateTable::for_device(a100(), 4);
  GovernorConfig config;
  config.policy = GovernorConfig::Policy::kFixed;
  config.fixed_pstate = 7;  // beyond the table, clamps to deepest
  const auto governor = make_governor(config);
  EXPECT_EQ(governor->decide(input_at(0.0, 1.0, 0), table), 3);
  EXPECT_EQ(governor->decide(input_at(1.0, 0.0, 3), table), 3);
}

TEST(UtilizationGovernor, BoostWaitsForTheHoldTime) {
  const PStateTable table = PStateTable::for_device(a100(), 5);
  GovernorConfig config;
  config.boost_util = 0.80;
  config.boost_hold_s = 0.03;  // three 10 ms slices
  const auto governor = make_governor(config);

  int state = 3;
  // Two slices above threshold: hysteresis holds the state.
  state = governor->decide(input_at(0.00, 0.9, state), table);
  EXPECT_EQ(state, 3);
  state = governor->decide(input_at(0.01, 0.9, state), table);
  EXPECT_EQ(state, 3);
  // Third consecutive slice reaches the hold time: one step toward boost.
  state = governor->decide(input_at(0.02, 0.9, state), table);
  EXPECT_EQ(state, 2);
  // The timer restarts after a step — the next slice does not cascade.
  state = governor->decide(input_at(0.03, 0.9, state), table);
  EXPECT_EQ(state, 2);
}

TEST(UtilizationGovernor, MiddleBandResetsTheTimers) {
  const PStateTable table = PStateTable::for_device(a100(), 5);
  GovernorConfig config;
  config.boost_util = 0.80;
  config.boost_hold_s = 0.02;
  const auto governor = make_governor(config);

  int state = 3;
  state = governor->decide(input_at(0.00, 0.9, state), table);
  EXPECT_EQ(state, 3);
  // One slice in the dead band between the thresholds wipes the pending
  // boost; the climb must start over.
  state = governor->decide(input_at(0.01, 0.5, state), table);
  EXPECT_EQ(state, 3);
  state = governor->decide(input_at(0.02, 0.9, state), table);
  EXPECT_EQ(state, 3);
  state = governor->decide(input_at(0.03, 0.9, state), table);
  EXPECT_EQ(state, 2);
}

TEST(UtilizationGovernor, StepsDownAfterTheLowHold) {
  const PStateTable table = PStateTable::for_device(a100(), 3);
  GovernorConfig config;
  config.low_util = 0.30;
  config.low_hold_s = 0.02;
  const auto governor = make_governor(config);

  int state = 0;
  state = governor->decide(input_at(0.00, 0.1, state), table);
  EXPECT_EQ(state, 0);
  state = governor->decide(input_at(0.01, 0.1, state), table);
  EXPECT_EQ(state, 1);
  state = governor->decide(input_at(0.02, 0.1, state), table);
  EXPECT_EQ(state, 1);
  state = governor->decide(input_at(0.03, 0.1, state), table);
  EXPECT_EQ(state, 2);
  // Deepest state: low utilization cannot push further.
  state = governor->decide(input_at(0.04, 0.1, state), table);
  state = governor->decide(input_at(0.05, 0.1, state), table);
  EXPECT_EQ(state, 2);
}

TEST(UtilizationGovernor, ResetForgetsHeldTime) {
  const PStateTable table = PStateTable::for_device(a100(), 3);
  GovernorConfig config;
  config.boost_util = 0.80;
  config.boost_hold_s = 0.02;
  const auto governor = make_governor(config);

  int state = 2;
  state = governor->decide(input_at(0.00, 0.9, state), table);
  EXPECT_EQ(state, 2);
  governor->reset();
  // Post-reset the hold starts from zero again.
  state = governor->decide(input_at(0.01, 0.9, state), table);
  EXPECT_EQ(state, 2);
  state = governor->decide(input_at(0.02, 0.9, state), table);
  EXPECT_EQ(state, 1);
}

TEST(OracleGovernor, PicksTheDeepestServingState) {
  const PStateTable table = PStateTable::for_device(a100(), 5, 0.40);
  const auto governor = make_governor(
      GovernorConfig{GovernorConfig::Policy::kOracle});

  // Clock fracs are {1.0, 0.85, 0.70, 0.55, 0.40}.
  GovernorInput input = input_at(0.0, 0.0, 0);
  input.offered_next = 0.0;
  EXPECT_EQ(governor->decide(input, table), 4);
  input.offered_next = 0.5;
  EXPECT_EQ(governor->decide(input, table), 3);
  input.offered_next = 0.9;
  EXPECT_EQ(governor->decide(input, table), 0);
  // Backlog forces a higher state than the offered load alone would.
  input.offered_next = 0.3;
  input.backlog_s = 0.005;  // drains within one 10 ms slice at +0.5
  EXPECT_EQ(governor->decide(input, table), 1);
}

}  // namespace
}  // namespace gpupower::gpusim::dvfs
