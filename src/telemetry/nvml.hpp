// NVML-shaped facade over the simulator, so host code written against the
// NVIDIA Management Library ports directly: handles, return codes,
// milliwatt power queries, temperature, and clock queries.  Backing state
// is the simulated device instead of a driver ioctl.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "gpusim/power.hpp"
#include "gpusim/simulator.hpp"

namespace gpupower::telemetry::nvml {

enum class Return {
  kSuccess = 0,
  kUninitialized = 1,
  kInvalidArgument = 2,
  kNotFound = 6,
};

[[nodiscard]] const char* error_string(Return r) noexcept;

/// Equivalent of nvmlDevice_t: a handle onto one simulated GPU whose
/// "current workload" is the most recent PowerReport applied to it.
class Device {
 public:
  explicit Device(gpupower::gpusim::GpuModel model)
      : sim_(model) {}

  /// Attaches the steady-state workload whose telemetry subsequent queries
  /// report.  Clearing (nullopt) returns the device to idle.
  void set_workload(std::optional<gpupower::gpusim::PowerReport> report) {
    workload_ = std::move(report);
  }

  /// nvmlDeviceGetPowerUsage: current draw in milliwatts.
  [[nodiscard]] Return power_usage_mw(std::uint32_t& mw) const;

  /// nvmlDeviceGetEnforcedPowerLimit: TDP in milliwatts.
  [[nodiscard]] Return enforced_power_limit_mw(std::uint32_t& mw) const;

  /// nvmlDeviceGetTemperature(NVML_TEMPERATURE_GPU).
  [[nodiscard]] Return temperature_c(std::uint32_t& deg) const;

  /// nvmlDeviceGetClockInfo(NVML_CLOCK_SM), in MHz, reflecting throttling.
  [[nodiscard]] Return clock_info_mhz(std::uint32_t& mhz) const;

  /// nvmlDeviceGetUtilizationRates().gpu, percent.
  [[nodiscard]] Return utilization_gpu_pct(std::uint32_t& pct) const;

  /// nvmlDeviceGetName.
  [[nodiscard]] Return name(std::string& out) const;

  [[nodiscard]] const gpupower::gpusim::GpuSimulator& simulator() const {
    return sim_;
  }

 private:
  gpupower::gpusim::GpuSimulator sim_;
  std::optional<gpupower::gpusim::PowerReport> workload_;
};

/// Equivalent of nvmlDeviceGetHandleByIndex over the four modelled GPUs
/// (index order: A100, H100, V100, RTX 6000).
[[nodiscard]] Return device_get_handle_by_index(unsigned index,
                                                std::optional<Device>& out);

}  // namespace gpupower::telemetry::nvml
