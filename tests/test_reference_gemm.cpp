#include "gemm/reference.hpp"

#include <gtest/gtest.h>

#include "patterns/distributions.hpp"

namespace gpupower::gemm {
namespace {

using gpupower::numeric::float16_t;
using gpupower::numeric::int8_value_t;

TEST(ReferenceGemm, TwoByTwoKnownResult) {
  // A = [1 2; 3 4], B stored as B^T (transpose_b default): storage rows are
  // the columns of the consumed B.  Use B = [5 6; 7 8] -> storage [5 7; 6 8].
  GemmProblem p = GemmProblem::square(2);
  Matrix<float> a(2, 2, {1, 2, 3, 4});
  Matrix<float> b_storage(2, 2, {5, 7, 6, 8});
  Matrix<float> c(2, 2);
  Matrix<float> d;
  reference_gemm(p, a, b_storage, c, d);
  EXPECT_EQ(d.at(0, 0), 19.0f);
  EXPECT_EQ(d.at(0, 1), 22.0f);
  EXPECT_EQ(d.at(1, 0), 43.0f);
  EXPECT_EQ(d.at(1, 1), 50.0f);
}

TEST(ReferenceGemm, UntransposedB) {
  GemmProblem p = GemmProblem::square(2, /*transpose_b=*/false);
  Matrix<float> a(2, 2, {1, 2, 3, 4});
  Matrix<float> b(2, 2, {5, 6, 7, 8});  // consumed directly as (K, M)
  Matrix<float> c(2, 2);
  Matrix<float> d;
  reference_gemm(p, a, b, c, d);
  EXPECT_EQ(d.at(0, 0), 19.0f);
  EXPECT_EQ(d.at(0, 1), 22.0f);
}

TEST(ReferenceGemm, AlphaBetaEpilogue) {
  GemmProblem p = GemmProblem::square(2);
  p.alpha = 2.0f;
  p.beta = 0.5f;
  Matrix<float> a(2, 2, {1, 0, 0, 1});  // identity
  Matrix<float> b_storage(2, 2, {3, 5, 4, 6});
  Matrix<float> c(2, 2, {10, 10, 10, 10});
  Matrix<float> d;
  reference_gemm(p, a, b_storage, c, d);
  // D = 2 * B + 0.5 * C with B = [3 4; 5 6].
  EXPECT_EQ(d.at(0, 0), 11.0f);
  EXPECT_EQ(d.at(0, 1), 13.0f);
  EXPECT_EQ(d.at(1, 0), 15.0f);
  EXPECT_EQ(d.at(1, 1), 17.0f);
}

TEST(ReferenceGemm, Int8AccumulatesExactlyInInt32) {
  GemmProblem p = GemmProblem::square(2);
  Matrix<int8_value_t> a(2, 2);
  Matrix<int8_value_t> b(2, 2);
  a.fill(int8_value_t(127.0f));
  b.fill(int8_value_t(127.0f));
  Matrix<std::int32_t> c(2, 2);
  Matrix<std::int32_t> d;
  reference_gemm(p, a, b, c, d);
  EXPECT_EQ(d.at(0, 0), 2 * 127 * 127);
}

TEST(ReferenceGemm, Fp16InputsAccumulateInFp32) {
  // 2048 values of 1.0 sum exactly in FP32 accumulation; FP16 accumulation
  // would saturate precision far earlier.
  const std::size_t k = 2048;
  GemmProblem p{1, k, 1, 1.0f, 0.0f, true};
  Matrix<float16_t> a(1, k);
  Matrix<float16_t> b(1, k);
  a.fill(float16_t(1.0f));
  b.fill(float16_t(1.0f));
  Matrix<float> c(1, 1);
  Matrix<float> d;
  reference_gemm(p, a, b, c, d);
  EXPECT_EQ(d.at(0, 0), 2048.0f);
}

TEST(ReferenceGemm, ZeroedCMatrixBetaZero) {
  // The paper zeroes C and uses beta = 0: D must be pure A*B even when C
  // holds garbage (beta annihilates it).
  GemmProblem p = GemmProblem::square(2);
  p.beta = 0.0f;
  Matrix<float> a(2, 2, {1, 2, 3, 4});
  Matrix<float> b_storage(2, 2, {5, 7, 6, 8});
  Matrix<float> c(2, 2, {999, 999, 999, 999});
  Matrix<float> d;
  reference_gemm(p, a, b_storage, c, d);
  EXPECT_EQ(d.at(0, 0), 19.0f);
}

}  // namespace
}  // namespace gpupower::gemm
