#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/config_builder.hpp"

namespace gpupower::core {
namespace detail {

struct ExperimentJob {
  ExperimentConfig config;
  std::vector<SeedReplicaResult> replicas;  ///< slot per seed, disjoint writes
  std::atomic<int> remaining{0};

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  bool done = false;
  ExperimentResult result;
  std::exception_ptr error;

  void wait() const {
    std::unique_lock lock(mutex);
    cv.wait(lock, [this] { return done; });
  }
};

struct SeedTask {
  std::shared_ptr<ExperimentJob> job;
  int seed_index = 0;
};

struct EngineState {
  EngineOptions options;
  int worker_count = 1;
  std::vector<std::thread> threads;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<SeedTask> queue;
  bool stop = false;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::uint64_t outstanding = 0;

  mutable std::mutex cache_mutex;
  std::unordered_map<std::string, std::shared_ptr<ExperimentJob>> cache;
  EngineStats stats;
  std::atomic<std::uint64_t> replicas_run{0};
};

namespace {

void finish_job(EngineState& state, const std::shared_ptr<ExperimentJob>& job) {
  {
    std::lock_guard lock(job->mutex);
    if (!job->error) {
      try {
        job->result = reduce_replicas(job->config, job->replicas);
      } catch (...) {
        job->error = std::current_exception();
      }
    }
    job->done = true;
  }
  job->cv.notify_all();
  {
    std::lock_guard lock(state.done_mutex);
    --state.outstanding;
    if (state.outstanding == 0) state.done_cv.notify_all();
  }
}

void worker_loop(const std::shared_ptr<EngineState>& state) {
  for (;;) {
    SeedTask task;
    {
      std::unique_lock lock(state->queue_mutex);
      state->queue_cv.wait(
          lock, [&] { return state->stop || !state->queue.empty(); });
      if (state->queue.empty()) {
        if (state->stop) return;
        continue;
      }
      task = std::move(state->queue.front());
      state->queue.pop_front();
    }

    try {
      // Disjoint slots: no lock needed for the write, the job's atomic
      // countdown orders it before the reduction.
      task.job->replicas[static_cast<std::size_t>(task.seed_index)] =
          run_seed_replica(task.job->config, task.seed_index);
    } catch (...) {
      std::lock_guard lock(task.job->mutex);
      if (!task.job->error) task.job->error = std::current_exception();
    }
    state->replicas_run.fetch_add(1, std::memory_order_relaxed);

    if (task.job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finish_job(*state, task.job);
    }
  }
}

}  // namespace
}  // namespace detail

namespace {

[[noreturn]] void throw_invalid_handle(const char* method) {
  throw std::logic_error(std::string("ExperimentHandle::") + method +
                         "() on a default-constructed (invalid) handle; "
                         "obtain handles from ExperimentEngine::submit");
}

}  // namespace

const ExperimentResult& ExperimentHandle::get() const {
  if (!valid()) throw_invalid_handle("get");
  job_->wait();
  if (job_->error) std::rethrow_exception(job_->error);
  return job_->result;
}

bool ExperimentHandle::ready() const {
  if (!valid()) throw_invalid_handle("ready");
  std::lock_guard lock(job_->mutex);
  return job_->done;
}

const ExperimentConfig& ExperimentHandle::config() const {
  if (!valid()) throw_invalid_handle("config");
  return job_->config;
}

std::vector<SweepEntry> SweepRun::collect() const {
  std::vector<SweepEntry> entries;
  entries.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    entries.push_back({points[i], handles[i].get()});
  }
  return entries;
}

analysis::JsonValue SweepRun::to_json() const {
  const std::vector<SweepEntry> entries = collect();
  return sweep_to_json(figure, base, entries);
}

ExperimentEngine::ExperimentEngine(EngineOptions options)
    : state_(std::make_shared<detail::EngineState>()) {
  state_->options = options;
  int workers = options.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
  }
  state_->worker_count = std::clamp(workers, 1, 256);
  state_->threads.reserve(static_cast<std::size_t>(state_->worker_count));
  for (int i = 0; i < state_->worker_count; ++i) {
    state_->threads.emplace_back(detail::worker_loop, state_);
  }
}

ExperimentEngine::~ExperimentEngine() {
  wait_all();
  {
    std::lock_guard lock(state_->queue_mutex);
    state_->stop = true;
  }
  state_->queue_cv.notify_all();
  for (std::thread& thread : state_->threads) thread.join();
}

ExperimentHandle ExperimentEngine::submit(const ExperimentConfig& config) {
  auto& state = *state_;
  if (config.seeds <= 0) {
    // A zero-seed job would "complete" with an all-zero result; reject it
    // loudly instead (ExperimentConfigBuilder enforces the same bound).
    throw std::invalid_argument(
        "ExperimentEngine::submit: config.seeds must be >= 1, got " +
        std::to_string(config.seeds));
  }

  // Fully initialise the job before publishing it to the cache, so a
  // concurrent duplicate submit sees a consistent object.
  auto job = std::make_shared<detail::ExperimentJob>();
  job->config = config;
  const int seeds = config.seeds;
  job->replicas.resize(static_cast<std::size_t>(seeds));
  job->remaining.store(seeds, std::memory_order_relaxed);

  {
    std::lock_guard lock(state.cache_mutex);
    ++state.stats.submitted;
    if (state.options.cache_enabled) {
      const std::string key = canonical_config_key(config);
      const auto [it, inserted] = state.cache.try_emplace(key, job);
      if (!inserted) {
        ++state.stats.cache_hits;
        return ExperimentHandle(it->second);
      }
    }
    ++state.stats.jobs_computed;
  }

  {
    std::lock_guard lock(state.done_mutex);
    ++state.outstanding;
  }
  {
    std::lock_guard lock(state.queue_mutex);
    for (int s = 0; s < seeds; ++s) state.queue.push_back({job, s});
  }
  state.queue_cv.notify_all();
  return ExperimentHandle(job);
}

std::vector<ExperimentHandle> ExperimentEngine::submit_batch(
    const std::vector<ExperimentConfig>& configs) {
  std::vector<ExperimentHandle> handles;
  handles.reserve(configs.size());
  for (const ExperimentConfig& config : configs) {
    handles.push_back(submit(config));
  }
  return handles;
}

SweepRun ExperimentEngine::submit_sweep(FigureId id,
                                        const ExperimentConfig& base) {
  SweepRun run;
  run.figure = id;
  run.base = base;
  run.points = figure_sweep(id);
  run.handles.reserve(run.points.size());
  for (const SweepPoint& point : run.points) {
    ExperimentConfig config = base;
    config.pattern = point.spec;
    run.handles.push_back(submit(config));
  }
  return run;
}

void ExperimentEngine::wait_all() {
  std::unique_lock lock(state_->done_mutex);
  state_->done_cv.wait(lock, [this] { return state_->outstanding == 0; });
}

EngineStats ExperimentEngine::stats() const {
  std::lock_guard lock(state_->cache_mutex);
  EngineStats stats = state_->stats;
  stats.replicas_run = state_->replicas_run.load(std::memory_order_relaxed);
  return stats;
}

int ExperimentEngine::workers() const noexcept { return state_->worker_count; }

void ExperimentEngine::clear_cache() {
  std::lock_guard lock(state_->cache_mutex);
  state_->cache.clear();
}

}  // namespace gpupower::core
