#include "numeric/dtype.hpp"

#include <array>
#include <cctype>
#include <string>

namespace gpupower::numeric {

std::string_view name(DType t) noexcept {
  switch (t) {
    case DType::kFP32:
      return "FP32";
    case DType::kFP16:
      return "FP16";
    case DType::kFP16T:
      return "FP16-T";
    case DType::kINT8:
      return "INT8";
  }
  return "?";
}

bool parse_dtype(std::string_view text, DType& out) noexcept {
  std::string canon;
  canon.reserve(text.size());
  for (const char c : text) {
    if (c == '_' || c == '-') continue;
    canon.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (canon == "fp32" || canon == "float32" || canon == "float") {
    out = DType::kFP32;
    return true;
  }
  if (canon == "fp16" || canon == "half" || canon == "float16") {
    out = DType::kFP16;
    return true;
  }
  if (canon == "fp16t" || canon == "fp16tc" || canon == "fp16tensor") {
    out = DType::kFP16T;
    return true;
  }
  if (canon == "int8" || canon == "i8" || canon == "s8") {
    out = DType::kINT8;
    return true;
  }
  return false;
}

}  // namespace gpupower::numeric
