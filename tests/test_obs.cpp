// Observability suite: the trace exporter (valid Chrome-trace JSON,
// correct parent-before-child ordering, drop accounting), the switch
// semantics (no path -> no file; disabled -> instrumentation inert), the
// metrics registry (counter/gauge/histogram gating, stable JSON schema),
// and the layer's core contract — tracing never perturbs results
// (bit-identical engine output with tracing on vs. off).
#include "core/obs/obs.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/json.hpp"
#include "core/engine.hpp"
#include "core/scenario.hpp"
#include "core/spec.hpp"

namespace gpupower::core::obs {
namespace {

using analysis::JsonValue;

const char kSingleSpec[] =
    R"json({"scenario": "static", "experiment": {"gpu": "a100",)json"
    R"json( "dtype": "fp16", "n": 64, "seeds": 1,)json"
    R"json( "pattern": "gaussian(sigma=210)",)json"
    R"json( "sampling": {"tiles": 4, "k_fraction": 0.5}}})json";

/// Every test starts from switched-off, empty observability state and
/// leaves it that way: the switches and rings are process globals.
class ObsFixture : public ::testing::Test {
 protected:
  void SetUp() override { quiesce(); }
  void TearDown() override { quiesce(); }

  static void quiesce() {
    set_trace_path("");
    set_metrics_enabled(false);
    reset_trace();
    reset_metrics();
  }

  static std::string temp_path(const char* name) {
    return (std::filesystem::path(::testing::TempDir()) / name).string();
  }

  static JsonValue parse_trace_file(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    const auto parsed = analysis::json_parse(text.str());
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return parsed.value;
  }
};

TEST_F(ObsFixture, NowNsIsPositiveAndMonotonic) {
  // Strictly positive matters: 0 is the instrumentation sites' "switched
  // off" sentinel, so the first reading of the process must not be 0.
  const std::int64_t a = now_ns();
  const std::int64_t b = now_ns();
  EXPECT_GT(a, 0);
  EXPECT_GE(b, a);
}

TEST_F(ObsFixture, DisabledSpansRecordNothing) {
  ASSERT_FALSE(tracing_enabled());
  { Span span("test.disabled"); }
  record_span("test.disabled.explicit", 1, 2);
  const TraceCounts counts = trace_counts();
  EXPECT_EQ(counts.recorded, 0u);
  EXPECT_EQ(counts.dropped, 0u);
}

TEST_F(ObsFixture, FlushWithoutPathWritesNoFile) {
  EXPECT_FALSE(flush_trace());
  // And a never-configured path must not appear on disk as a side effect.
  const std::string path = temp_path("obs_never_configured.json");
  std::filesystem::remove(path);
  { Span span("test.unconfigured"); }
  EXPECT_FALSE(flush_trace());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(ObsFixture, ExportsValidNestedChromeTrace) {
  const std::string path = temp_path("obs_trace_nested.json");
  set_trace_path(path);
  ASSERT_TRUE(tracing_enabled());
  EXPECT_TRUE(metrics_enabled());  // a trace consumer wants timings too

  {
    Span outer("test.outer");
    {
      Span inner("test.inner");
    }
    {
      Span inner("test.inner");
    }
  }
  ASSERT_EQ(trace_counts().recorded, 3u);
  std::string error;
  ASSERT_TRUE(flush_trace(&error)) << error;

  const JsonValue doc = parse_trace_file(path);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 3u);

  // Sorted start-ascending: the outer span precedes the children it
  // encloses, and timestamps are monotonic.
  EXPECT_EQ(events->at(0).find("name")->as_string(), "test.outer");
  double last_ts = -1.0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& event = events->at(i);
    EXPECT_EQ(event.find("ph")->as_string(), "X");
    EXPECT_EQ(event.find("cat")->as_string(), "gpupower");
    const double ts = event.find("ts")->as_number(-1.0);
    const double dur = event.find("dur")->as_number(-1.0);
    EXPECT_GE(ts, last_ts);
    EXPECT_GE(dur, 0.0);
    last_ts = ts;
  }
  // Same-thread nesting: each inner span lies within the outer interval.
  const double outer_ts = events->at(0).find("ts")->as_number(0);
  const double outer_end =
      outer_ts + events->at(0).find("dur")->as_number(0);
  for (std::size_t i = 1; i < events->size(); ++i) {
    const double ts = events->at(i).find("ts")->as_number(0);
    const double end = ts + events->at(i).find("dur")->as_number(0);
    EXPECT_GE(ts, outer_ts);
    EXPECT_LE(end, outer_end + 1e-9);
  }
  EXPECT_EQ(doc.find("otherData")->find("dropped")->as_number(-1), 0.0);
  std::filesystem::remove(path);
}

TEST_F(ObsFixture, FullRingDropsAndCountsInsteadOfWrapping) {
  const std::string path = temp_path("obs_trace_overflow.json");
  set_trace_path(path);
  // Overfill one fresh ring from a dedicated thread (its first obs use
  // creates its own ring, so the counts below are exact).
  constexpr std::uint64_t kOverfill = (1u << 16) + 257;
  const TraceCounts before = trace_counts();
  std::thread writer([] {
    for (std::uint64_t i = 0; i < kOverfill; ++i) {
      record_span("test.overflow", static_cast<std::int64_t>(i + 1),
                  static_cast<std::int64_t>(i + 2));
    }
  });
  writer.join();
  const TraceCounts counts = trace_counts();
  EXPECT_EQ(counts.recorded - before.recorded, std::uint64_t{1} << 16);
  EXPECT_EQ(counts.dropped - before.dropped, 257u);

  // The exporter reports the loss instead of hiding it.
  std::string error;
  ASSERT_TRUE(flush_trace(&error)) << error;
  const JsonValue doc = parse_trace_file(path);
  EXPECT_GE(doc.find("otherData")->find("dropped")->as_number(0), 257.0);
  std::filesystem::remove(path);
}

TEST_F(ObsFixture, ConcurrentWritersLoseNoEvents) {
  set_trace_path(temp_path("obs_trace_stress.json"));
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;  // inside one ring's capacity
  const TraceCounts before = trace_counts();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        Span span("test.stress");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const TraceCounts counts = trace_counts();
  EXPECT_EQ(counts.recorded - before.recorded, kThreads * kPerThread);
  EXPECT_EQ(counts.dropped, before.dropped);
  // Exporting the full set must stay well-formed (checker-level checks
  // live in tools/check_trace.py; here: parseable + complete).
  std::string error;
  ASSERT_TRUE(flush_trace(&error)) << error;
  const JsonValue doc = parse_trace_file(trace_path());
  EXPECT_GE(doc.find("traceEvents")->size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  std::filesystem::remove(trace_path());
}

// The layer's core contract: tracing observes, never perturbs.  The same
// scenario on fresh engines with tracing off vs. on must produce
// bit-identical result documents — including now that the traced run
// attributes spans (interns canonical keys, fills SpanArgs).
TEST_F(ObsFixture, TracingDoesNotPerturbResults) {
  const SpecParseResult parsed = parse_scenario_spec_text(kSingleSpec);
  ASSERT_TRUE(parsed.ok) << parsed.error;

  const auto run_once = [&parsed]() {
    EngineOptions options;
    options.workers = 2;
    ExperimentEngine engine(options);
    return scenario_result_to_json(engine.submit(parsed.spec.config).get())
        .dump();
  };

  const std::string off = run_once();
  set_trace_path(temp_path("obs_trace_perturb.json"));
  const std::string on = run_once();
  ASSERT_TRUE(tracing_enabled());
  EXPECT_GT(trace_counts().recorded, 0u);  // the run really was traced
  EXPECT_EQ(off, on);
  // The traced run was the attributed kind: its exported replica span
  // carries the scenario canonical key, pinning that bit-identity holds
  // WITH argument capture on, not just with bare spans.
  std::string error;
  ASSERT_TRUE(flush_trace(&error)) << error;
  const JsonValue doc = parse_trace_file(trace_path());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool attributed = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& event = events->at(i);
    if (event.find("name")->as_string() != "replica.static") continue;
    const JsonValue* args = event.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("key")->as_string(),
              canonical_scenario_key(parsed.spec.config));
    attributed = true;
  }
  EXPECT_TRUE(attributed);
  std::filesystem::remove(trace_path());
}

// Span arguments: bounded key/value capture, exported as the Chrome
// trace-event "args" object; spans without args stay argument-free.
TEST_F(ObsFixture, SpanArgsExportWithTheDocumentedSchema) {
  const std::string path = temp_path("obs_trace_args.json");
  set_trace_path(path);

  {
    Span bare("test.bare");
  }
  {
    Span tagged("test.tagged", SpanArgs()
                                   .arg("key", "static\x1fgpu=a100")
                                   .arg("seed", std::int64_t{7}));
  }
  {
    Span late("test.late");
    late.args(SpanArgs().arg("point", "uniform@0.50").arg("n", 0));
  }
  {
    // Capacity is a hard bound: the 5th arg is dropped, not overflowed.
    SpanArgs overfull;
    for (int i = 0; i < SpanArgs::kMaxArgs + 1; ++i) {
      overfull.arg("extra", i);
    }
    EXPECT_EQ(overfull.size(), SpanArgs::kMaxArgs);
    Span span("test.overfull", overfull);
  }
  std::string error;
  ASSERT_TRUE(flush_trace(&error)) << error;

  const JsonValue doc = parse_trace_file(path);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 4u);
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& event = events->at(i);
    const std::string name = event.find("name")->as_string();
    const JsonValue* args = event.find("args");
    if (name == "test.bare") {
      EXPECT_EQ(args, nullptr);
    } else if (name == "test.tagged") {
      ASSERT_NE(args, nullptr);
      // The \x1f kind separator must round-trip through JSON escaping.
      EXPECT_EQ(args->find("key")->as_string(), "static\x1fgpu=a100");
      EXPECT_EQ(args->find("seed")->as_number(-1), 7.0);
    } else if (name == "test.late") {
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->find("point")->as_string(), "uniform@0.50");
      EXPECT_EQ(args->find("n")->as_number(-1), 0.0);
    } else if (name == "test.overfull") {
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->size(), static_cast<std::size_t>(SpanArgs::kMaxArgs));
    }
  }
  std::filesystem::remove(path);
}

TEST_F(ObsFixture, InternReturnsStableImmortalPointers) {
  set_trace_path(temp_path("obs_trace_intern.json"));  // interning is live
  const std::string key = "fleet\x1fgpu=h100;cap=400";
  const char* a = intern(key);
  const char* b = intern(std::string(key));  // distinct source buffer
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);  // deduplicated: one immortal entry per distinct string
  EXPECT_EQ(std::string(a), key);
  const char* other = intern("fleet\x1fgpu=h100;cap=401");
  EXPECT_NE(a, other);
  std::filesystem::remove(trace_path());
}

// Engine spans carry scenario attribution: submit/replica/reduce all tag
// the canonical key, submit also names the kind.
TEST_F(ObsFixture, EngineSpansCarryTheScenarioKey) {
  const std::string path = temp_path("obs_trace_attributed.json");
  set_trace_path(path);
  const SpecParseResult parsed = parse_scenario_spec_text(kSingleSpec);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EngineOptions options;
  options.workers = 2;
  ExperimentEngine engine(options);
  (void)engine.submit(parsed.spec.config).get();
  engine.wait_all();
  std::string error;
  ASSERT_TRUE(flush_trace(&error)) << error;

  const std::string key = canonical_scenario_key(parsed.spec.config);
  const JsonValue doc = parse_trace_file(path);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int submit = 0, replica = 0, reduce = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& event = events->at(i);
    const std::string name = event.find("name")->as_string();
    const JsonValue* args = event.find("args");
    if (name == "engine.submit") {
      ++submit;
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->find("key")->as_string(), key);
      EXPECT_EQ(args->find("kind")->as_string(), "static");
    } else if (name == "replica.static") {
      ++replica;
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->find("key")->as_string(), key);
      EXPECT_NE(args->find("seed"), nullptr);
    } else if (name == "reduce.static") {
      ++reduce;
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->find("key")->as_string(), key);
      EXPECT_EQ(args->find("replicas")->as_number(0), 1.0);
    }
  }
  EXPECT_EQ(submit, 1);
  EXPECT_EQ(replica, 1);  // one seed
  EXPECT_EQ(reduce, 1);
  std::filesystem::remove(path);
}

TEST_F(ObsFixture, MetricsAreInertWhileDisabled) {
  Counter& c = counter("test.gated_counter");
  Gauge& g = gauge("test.gated_gauge");
  Histogram& h = histogram("test.gated_histogram");
  c.add(5);
  g.set(42);
  h.record(1000);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);

  set_metrics_enabled(true);
  c.add(5);
  g.set(42);
  h.record(1000);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(g.value(), 42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.total_ns(), 1000);
  EXPECT_EQ(h.max_ns(), 1000);
}

TEST_F(ObsFixture, RegistryLookupsAreStableReferences) {
  Counter& a = counter("test.same_name");
  Counter& b = counter("test.same_name");
  EXPECT_EQ(&a, &b);
}

TEST_F(ObsFixture, RegistryJsonHasTheDocumentedSchema) {
  set_metrics_enabled(true);
  counter("test.reg_counter").add(3);
  gauge("test.reg_gauge").set(-7);
  Histogram& h = histogram("test.reg_histogram");
  h.record(1 << 10);
  h.record(1 << 20);

  const JsonValue doc = registry_json();
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("test.reg_counter")->as_number(0), 3.0);
  EXPECT_EQ(doc.find("gauges")->find("test.reg_gauge")->as_number(0), -7.0);
  const JsonValue* hist = doc.find("histograms")->find("test.reg_histogram");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->as_number(0), 2.0);
  EXPECT_EQ(hist->find("max_ns")->as_number(0), double{1 << 20});
  // Quantiles are upper log2-bucket bounds: p50 covers the smaller sample,
  // p95/p99 the larger.
  EXPECT_GE(hist->find("p50_ns")->as_number(0), double{1 << 10});
  EXPECT_GE(hist->find("p95_ns")->as_number(0), double{1 << 20});
  EXPECT_GE(hist->find("p99_ns")->as_number(0), double{1 << 20});
  // Raw log2 bucket counts ride alongside the quantiles, trimmed at the
  // highest non-empty bucket; their sum is the sample count.
  const JsonValue* buckets = hist->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  EXPECT_GT(buckets->size(), 0u);
  double bucket_sum = 0.0;
  for (std::size_t i = 0; i < buckets->size(); ++i) {
    bucket_sum += buckets->at(i).as_number(0);
  }
  EXPECT_EQ(bucket_sum, 2.0);
  EXPECT_GT(buckets->at(buckets->size() - 1).as_number(0), 0.0);
}

// Trace-ring drop counts surface as gauges: a total that is always
// present, plus per-thread entries only for rings that actually dropped.
TEST_F(ObsFixture, RingDropCountsSurfaceAsGauges) {
  set_metrics_enabled(true);
  const JsonValue clean = registry_json();
  ASSERT_NE(clean.find("gauges")->find("obs.ring_dropped_total"), nullptr);
  EXPECT_EQ(
      clean.find("gauges")->find("obs.ring_dropped_total")->as_number(-1),
      0.0);

  // Overfill one fresh ring (dedicated thread => its own ring) and the
  // loss becomes visible without waiting for an export.
  set_trace_path(temp_path("obs_trace_drop_gauge.json"));
  constexpr std::uint64_t kOverfill = (1u << 16) + 99;
  std::thread writer([] {
    for (std::uint64_t i = 0; i < kOverfill; ++i) {
      record_span("test.overflow", static_cast<std::int64_t>(i + 1),
                  static_cast<std::int64_t>(i + 2));
    }
  });
  writer.join();
  const JsonValue doc = registry_json();
  EXPECT_GE(doc.find("gauges")->find("obs.ring_dropped_total")->as_number(0),
            99.0);
  // At least one per-tid gauge names the dropping ring.
  bool per_tid = false;
  for (const std::string& name : doc.find("gauges")->keys()) {
    if (name.rfind("obs.ring_dropped.tid", 0) == 0) per_tid = true;
  }
  EXPECT_TRUE(per_tid);
  std::filesystem::remove(trace_path());
}

// The one metrics schema every consumer shares (serve stats events,
// gpowerctl --metrics-out): engine stats with per-kind timing fields plus
// the obs registry dump.
TEST_F(ObsFixture, EngineMetricsJsonHasTheSharedSchema) {
  set_metrics_enabled(true);
  const SpecParseResult parsed = parse_scenario_spec_text(kSingleSpec);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EngineOptions options;
  options.workers = 2;
  ExperimentEngine engine(options);
  (void)engine.submit(parsed.spec.config).get();

  const JsonValue doc = engine.metrics_json();
  EXPECT_EQ(doc.find("gpupower_metrics")->as_number(0), 1.0);
  const JsonValue* engine_block = doc.find("engine");
  ASSERT_NE(engine_block, nullptr);
  EXPECT_EQ(engine_block->find("workers")->as_number(0), 2.0);
  EXPECT_EQ(engine_block->find("submitted")->as_number(0), 1.0);
  const JsonValue* by_kind = engine_block->find("by_kind");
  ASSERT_NE(by_kind, nullptr);
  for (const char* kind : {"static", "dvfs", "fleet"}) {
    const JsonValue* kind_block = by_kind->find(kind);
    ASSERT_NE(kind_block, nullptr) << kind;
    for (const char* field :
         {"submitted", "jobs_computed", "replicas_run", "store_hit_ratio",
          "compute_seconds", "queue_wait_seconds", "reduce_seconds",
          "store_read_seconds", "store_write_seconds"}) {
      EXPECT_NE(kind_block->find(field), nullptr) << kind << "." << field;
    }
  }
  // The static scenario actually computed, so its compute time is real.
  EXPECT_GT(by_kind->find("static")->find("compute_seconds")->as_number(-1),
            0.0);
  const JsonValue* obs_block = doc.find("obs");
  ASSERT_NE(obs_block, nullptr);
  const JsonValue* latency =
      obs_block->find("histograms")->find("engine.replica_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->find("count")->as_number(0), 1.0);
}

TEST_F(ObsFixture, StopWatchMeasuresOnTheSpanClock) {
  const StopWatch watch;
  const std::int64_t begin = now_ns();
  while (now_ns() - begin < 1000000) {
  }
  EXPECT_GE(watch.elapsed_ns(), 1000000);
  EXPECT_GE(watch.ms(), 1.0);
  EXPECT_GE(watch.seconds(), 1e-3);
}

}  // namespace
}  // namespace gpupower::core::obs
