// The time-resolved DVFS replayer: steps a workload timeline through a
// governor-driven P-state machine in fixed time slices, charging each slice
// the energy model's power at the slice's operating point and tracking the
// work backlog a too-deep P-state builds up (the latency side of the
// energy/latency trade-off).
//
// Per slice:
//   1. the governor picks the next P-state from the last slice's realized
//      utilization (the oracle additionally sees the upcoming offered load),
//   2. external constraints clamp the choice (a fleet power budget, a
//      thermal throttle) — unconstrained replays pass the defaults, which
//      clamp nothing,
//   3. offered work arrives (timeline), queued work drains at the state's
//      effective clock (TDP throttling included via evaluate_at),
//   4. power is the busy-weighted blend of the state's active steady-state
//      power and the device's idle floor; energy integrates power over the
//      slice.  When the caller threads a die temperature through the slices
//      (fleet thermal model), the slice's leakage comes from that
//      temperature instead of the baked steady-state fixed point.
//
// With a one-state (boost-only) table, a fixed(0) governor, and a saturating
// timeline, every slice reproduces the static model's total_w bit-identically
// — the "DVFS disabled" degenerate case the equivalence tests pin.
//
// The replay is a deterministic, single-threaded state machine: identical
// inputs give identical traces regardless of how many engine workers run
// other seeds concurrently.  DeviceCursor exposes the same machine one
// slice at a time, which is how the fleet simulator steps N devices in
// lockstep under a shared power cap; TimelineReplayer::replay() is exactly
// "plan + step until done" on one cursor, so a fleet of one unconstrained
// device is bit-identical to the single-device replay by construction.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "gemm/problem.hpp"
#include "gpusim/dvfs/governor.hpp"
#include "gpusim/dvfs/pstate.hpp"
#include "gpusim/dvfs/timeline.hpp"
#include "gpusim/power.hpp"
#include "telemetry/trace.hpp"

namespace gpupower::gpusim::dvfs {

struct ReplaySlice {
  double t_s = 0.0;          ///< slice start
  double offered = 0.0;      ///< offered load during the slice
  double utilization = 0.0;  ///< realized busy fraction
  int pstate = 0;
  double clock_frac = 1.0;   ///< effective clock (P-state x TDP throttle)
  double power_w = 0.0;
  double backlog_s = 0.0;    ///< queued work at slice end, boost-seconds
};

struct ReplayResult {
  std::vector<ReplaySlice> slices;
  double slice_s = 0.0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double peak_power_w = 0.0;
  double duration_s = 0.0;      ///< replay horizon (timeline + drain tail)
  double completion_s = 0.0;    ///< when the last queued work finished
  double backlog_max_s = 0.0;
  double mean_backlog_s = 0.0;  ///< time-average queued work (latency proxy)
  double work_offered_s = 0.0;  ///< total offered work, boost-seconds
  double work_completed_s = 0.0;
  int transitions = 0;          ///< P-state changes taken
  /// The slice-count backstop fired with backlog still queued: the energy
  /// and completion numbers under-count the unserved tail.
  bool truncated = false;

  /// Realized utilization per slice (window-end timestamps) — feed it back
  /// through WorkloadTimeline::from_trace for trace-driven replay.
  [[nodiscard]] telemetry::UtilTrace util_trace() const;
  /// Per-slice power as a telemetry trace (mean/energy helpers, CSV).
  [[nodiscard]] telemetry::PowerTrace power_trace() const;
};

/// External per-slice constraints on the state machine.  The defaults clamp
/// nothing — an unconstrained step is bit-identical to the historical
/// single-device replay.
struct StepConstraint {
  /// Thermal throttle: the realized state index is at least this (deeper =
  /// larger index), regardless of what the governor wanted.
  int min_pstate = 0;
  /// Fleet power budget: the realized state deepens until its steady-state
  /// active power fits the budget (or the table's deepest state is
  /// reached — the physical floor may still exceed a starved budget, which
  /// the fleet reports as an over-cap slice).
  double budget_w = std::numeric_limits<double>::infinity();
  /// Die temperature threaded across slices (fleet RC thermal model).
  /// >= 0: the slice's leakage is computed from this temperature instead
  /// of the per-state steady-state fixed point baked into the reports.
  double temperature_c = -1.0;
};

class TimelineReplayer {
 public:
  /// Precomputes the steady-state power report for every P-state in the
  /// table (one evaluate_at per state) for the given GEMM working point.
  TimelineReplayer(const DeviceDescriptor& dev,
                   const gemm::GemmProblem& problem,
                   gpupower::numeric::DType dtype,
                   const ActivityTotals& activity, const PStateTable& table);

  /// Multi-variant form: `variants[0]` is the base working point, further
  /// entries are the per-phase pattern overrides a timeline can reference
  /// (phase pattern index k selects variants[k + 1]).  One evaluate_at per
  /// (variant, state).
  TimelineReplayer(const DeviceDescriptor& dev,
                   const gemm::GemmProblem& problem,
                   gpupower::numeric::DType dtype,
                   std::span<const ActivityTotals> variants,
                   const PStateTable& table);

  /// Steps the governor through the timeline.  When `drain_backlog` is set
  /// the replay keeps running past the timeline's end (offered load 0)
  /// until queued work finishes, so slow governors pay their full latency
  /// bill.  The governor is reset() first; `slice_s` must be positive.
  /// Replays truncate at ~4M slices — a backstop against pathological
  /// slice/duration combinations, far above any sane configuration.
  [[nodiscard]] ReplayResult replay(const WorkloadTimeline& timeline,
                                    Governor& governor, double slice_s,
                                    bool drain_backlog = true) const;

  [[nodiscard]] const PStateTable& table() const noexcept { return table_; }
  [[nodiscard]] const DeviceDescriptor& descriptor() const noexcept {
    return dev_;
  }
  /// Steady-state report per P-state for the base working point
  /// (index-aligned with the table).
  [[nodiscard]] const std::vector<PowerReport>& pstate_reports()
      const noexcept {
    return reports_.front();
  }
  /// Reports for one activity variant (0 = base, k+1 = phase pattern k).
  [[nodiscard]] const std::vector<PowerReport>& pstate_reports(
      std::size_t variant) const noexcept {
    return reports_[variant];
  }
  [[nodiscard]] std::size_t variant_count() const noexcept {
    return reports_.size();
  }

 private:
  friend class DeviceCursor;
  DeviceDescriptor dev_;
  PStateTable table_;
  /// [variant][pstate] steady-state reports; variant 0 is the base.
  std::vector<std::vector<PowerReport>> reports_;
};

/// One device's replay state machine, advanced one slice at a time:
///
///   DeviceCursor cursor(replayer, timeline, governor, slice_s, true);
///   while (cursor.plan()) cursor.step(constraint);
///   ReplayResult result = cursor.finish();
///
/// plan() samples the timeline and runs the governor for the upcoming
/// slice (so a fleet allocator can read the device's unconstrained power
/// demand before committing a budget); step() applies the constraints,
/// serves work, charges power, and records the slice.  Every plan() must
/// be paired with exactly one step() before the next plan().
class DeviceCursor {
 public:
  /// Borrows everything: replayer, timeline, and governor must outlive the
  /// cursor.  Resets the governor.
  DeviceCursor(const TimelineReplayer& replayer,
               const WorkloadTimeline& timeline, Governor& governor,
               double slice_s, bool drain_backlog = true);

  /// Prepares the next slice: samples offered load and asks the governor
  /// for its (unconstrained) P-state choice.  Returns false when the
  /// device is done — timeline exhausted and, when draining, backlog empty
  /// — or the slice backstop fired.
  [[nodiscard]] bool plan();

  /// Executes the planned slice under `constraint`.
  void step(const StepConstraint& constraint = {});

  /// Finalizes the averages and returns the accumulated result.  The
  /// cursor is spent afterwards.
  [[nodiscard]] ReplayResult finish();

  // --- planned-slice observers (valid after a true plan()) ----------------
  /// State the governor chose before any constraint.
  [[nodiscard]] int desired_pstate() const noexcept { return planned_state_; }
  /// Exact power the planned slice would draw at the desired state — the
  /// busy-weighted blend step() will charge, so an idle device demands its
  /// floor, not its worst case.  Pass the device's threaded die
  /// temperature when the thermal model is on (the same value the step's
  /// constraint will carry) so demand and the budget clamp price leakage
  /// identically; < 0 uses the baked steady-state leakage.  This is the
  /// unconstrained demand an allocator divides the shared cap against.
  [[nodiscard]] double demand_w(double temperature_c = -1.0) const noexcept;
  /// The least power the device can draw this slice — the deepest state's
  /// predicted draw while it serves its queue.  A budget below this is
  /// physically unenforceable (the fleet reports such slices as over-cap).
  /// Same temperature contract as demand_w().
  [[nodiscard]] double floor_w(double temperature_c = -1.0) const noexcept;
  /// Queued plus newly arriving work for the planned slice, boost-seconds
  /// (what the greedy-oracle allocator provisions against).
  [[nodiscard]] double pending_work_s() const noexcept;
  /// Served boost-seconds per joule at the desired state — the greedy
  /// oracle fills efficient devices first.
  [[nodiscard]] double efficiency_s_per_j() const noexcept;

  // --- running-state observers --------------------------------------------
  [[nodiscard]] int pstate() const noexcept { return pstate_; }
  [[nodiscard]] double backlog_s() const noexcept { return backlog_s_; }
  [[nodiscard]] double t_s() const noexcept {
    return static_cast<double>(index_) * slice_s_;
  }
  [[nodiscard]] const ReplayResult& partial() const noexcept {
    return result_;
  }

 private:
  /// Power the planned slice draws at `state`: exactly the value step()
  /// would charge (same busy/util arithmetic, same leakage source), which
  /// is what makes the budget clamp exact — a granted budget is violated
  /// only when even the deepest state's draw exceeds it.
  [[nodiscard]] double predicted_power_w(int state,
                                         double temperature_c) const;

  const TimelineReplayer& replayer_;
  const WorkloadTimeline& timeline_;
  Governor& governor_;
  double slice_s_;
  bool drain_backlog_;
  std::size_t max_slices_ = 0;
  std::vector<double> effective_clock_;  ///< base variant, for governors

  ReplayResult result_;
  std::size_t index_ = 0;
  double backlog_s_ = 0.0;
  double last_util_ = 0.0;
  int pstate_ = 0;
  double backlog_time_integral_ = 0.0;

  // Planned-slice scratch (plan() fills, step() consumes).
  double planned_offered_ = 0.0;
  double planned_covered_s_ = 0.0;
  int planned_state_ = 0;
  std::size_t planned_variant_ = 0;
};

}  // namespace gpupower::gpusim::dvfs
