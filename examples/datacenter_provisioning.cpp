// Datacenter provisioning with input-dependent power models: power is
// provisioned per worst case (a DGX-H100 node reserves 10 kW for 8 GPUs),
// but the paper shows the *input data* moves per-GPU draw by tens of watts.
// This example runs the input-dependent power model across the four
// simulated GPUs and three workload input profiles — all twelve experiments
// batched on the ExperimentEngine — and reports how much provisioning
// headroom an input-aware scheduler could reclaim per GPU and per 1000-GPU
// cluster.
//
//   ./build/examples/datacenter_provisioning
#include <cstdio>
#include <iostream>

#include "analysis/table.hpp"
#include "core/config_builder.hpp"
#include "core/engine.hpp"
#include "core/env.hpp"
#include "core/figures.hpp"

int main() {
  using namespace gpupower;

  const core::BenchEnv env = core::read_bench_env();
  std::printf(
      "Input-aware power provisioning (FP16-T GEMM, %zux%zu, %d seeds)\n\n",
      env.n, env.n, env.seeds);

  struct Profile {
    const char* name;
    core::PatternSpec spec;
  };
  std::vector<Profile> profiles;
  profiles.push_back({"adversarial (random bits)", [] {
                        core::PatternSpec s = core::baseline_gaussian_spec();
                        s.bitop = core::PatternSpec::BitOp::kRandomizeLow;
                        s.bit_fraction = 1.0;
                        return s;
                      }()});
  profiles.push_back({"typical (gaussian)", core::baseline_gaussian_spec()});
  profiles.push_back({"curated (sorted + 50% sparse)", [] {
                        core::PatternSpec s = core::baseline_gaussian_spec();
                        s.place = core::PatternSpec::Place::kSortRows;
                        s.sort_percent = 100.0;
                        s.sparsity = 0.5;
                        return s;
                      }()});

  constexpr gpusim::GpuModel kGpus[] = {
      gpusim::GpuModel::kA100PCIe, gpusim::GpuModel::kH100SXM,
      gpusim::GpuModel::kV100SXM2, gpusim::GpuModel::kRTX6000};

  // All (gpu x profile) experiments in flight at once.
  core::EngineOptions engine_options;
  engine_options.workers = env.workers;
  core::ExperimentEngine engine(engine_options);
  std::vector<std::vector<core::ExperimentHandle>> handles_by_gpu;
  for (const auto gpu : kGpus) {
    std::vector<core::ExperimentHandle> handles;
    for (const auto& profile : profiles) {
      handles.push_back(engine.submit(core::ExperimentConfigBuilder()
                                          .gpu(gpu)
                                          .dtype(numeric::DType::kFP16T)
                                          .env(env)
                                          .pattern(profile.spec)
                                          .build()));
    }
    handles_by_gpu.push_back(std::move(handles));
  }
  engine.wait_all();

  for (std::size_t g = 0; g < std::size(kGpus); ++g) {
    const auto& dev = gpusim::device(kGpus[g]);
    analysis::Table table({"input profile", "power (W)", "vs TDP"});
    double worst = 0.0;
    double best = 1e30;
    for (std::size_t p = 0; p < profiles.size(); ++p) {
      const auto& result = handles_by_gpu[g][p].get();
      worst = std::max(worst, result.power_w);
      best = std::min(best, result.power_w);
      table.add_row({profiles[p].name, analysis::fixed(result.power_w, 1),
                     analysis::fixed(100.0 * result.power_w / dev.tdp_w, 1) +
                         " %"});
    }
    std::printf("--- %s (TDP %.0f W) ---\n", std::string(dev.name).c_str(),
                dev.tdp_w);
    table.print(std::cout);
    std::printf(
        "input-dependent swing: %.1f W/GPU => %.1f kW reclaimable per 1000 "
        "GPUs\n\n",
        worst - best, (worst - best));
  }
  std::printf(
      "A scheduler that knows its tenants' input statistics can provision\n"
      "against profile-specific peaks instead of a single worst case.\n");
  return 0;
}
