#include "numeric/int8.hpp"

#include <cmath>

namespace gpupower::numeric {

std::int8_t int8_value_t::quantize(float value) noexcept {
  if (std::isnan(value)) return 0;
  const float rounded = std::round(value);
  if (rounded <= -128.0f) return -128;
  if (rounded >= 127.0f) return 127;
  return static_cast<std::int8_t>(rounded);
}

}  // namespace gpupower::numeric
