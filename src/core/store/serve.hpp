// The engine as a long-lived service: `gpowerctl serve` reads
// newline-delimited scenario/campaign spec JSON (core/spec.hpp) and streams
// one NDJSON event per completed scenario as results land — not at
// wait_all() — so a client watching a campaign sees points arrive in
// completion order.  Any number of concurrent sessions (stdin, or one per
// Unix-socket client) multiplex onto ONE engine and ONE result store:
// identical scenarios submitted by different clients dedup through the
// shared cache/store and are computed at most once.
//
// Request lines:
//   {"scenario": "fleet", ...}      any single-scenario or campaign spec,
//                                   on one line
//   stats                           emit the engine counter line
//
// Response events (one compact JSON object per line):
//   {"type":"accepted","req":1,"scenario":"fleet","points":12}
//   {"type":"result","req":1,"point":"uniform@0.50","scenario":"fleet",
//    "metrics":{"energy_j":...,"completion_s":...,...}}
//   {"type":"done","req":1,"points":12}
//   {"type":"error","req":2,"error":"..."}
//   {"type":"stats","engine":"4 worker(s), ..."}
//
// Metric names match the bench documents (kind_bench_metrics in
// gpowerctl / BENCH_*.json), so serve output can be cross-checked against
// `gpowerctl run --bench-out` — CI does exactly that.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"

namespace gpupower::core {

struct ServeOptions {
  /// Attach the kind's full display document ("result": scenario_to_json)
  /// to every result event, not just the summary metrics.
  bool full_results = false;
  /// Completion-poll interval for the event streamer.
  int poll_ms = 2;
};

/// Serves one client: reads request lines from `in` until EOF, submits
/// onto the shared engine, and streams events to `out` as scenarios
/// complete.  Returns the number of request lines consumed.  A malformed
/// line emits an error event and the session continues — one bad request
/// must not kill a long-lived service.  Thread-safe with respect to the
/// engine: run any number of sessions against one engine concurrently.
long serve_session(ExperimentEngine& engine, std::istream& in,
                   std::ostream& out, const ServeOptions& options = {});

/// Summary metrics for one result in emission order, named exactly like
/// the bench-document metrics ("power_w"/"energy_per_iter_j" for static,
/// "energy_j"/"completion_s"/"backlog_mean_s"/"backlog_max_s" for
/// dvfs/fleet) — shared by serve result events and gpowerctl's bench
/// export so the two can never drift apart.
[[nodiscard]] std::vector<std::pair<std::string, double>>
scenario_summary_metrics(const ScenarioResult& result);

/// Blocking Unix-domain-socket server: binds `socket_path` (removing a
/// stale socket file first), accepts clients forever, and runs one
/// serve_session per connection on its own thread.  Only returns on a
/// socket-layer failure, with the reason in `error`.
bool serve_unix_socket(ExperimentEngine& engine,
                       const std::string& socket_path,
                       const ServeOptions& options, std::string& error);

}  // namespace gpupower::core
