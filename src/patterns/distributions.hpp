// Value-distribution generators for the experiments in Section IV-A.
// All floating-point experiments generate FP32 values first and convert to
// the target datatype afterwards (Section III), so every generator here
// returns float buffers.
#pragma once

#include <cstdint>
#include <vector>

#include "patterns/rng.hpp"

namespace gpupower::patterns {

/// Gaussian(mean, stddev) fill — Figs. 2, 3a (sweep stddev), 3b (sweep mean).
[[nodiscard]] std::vector<float> gaussian_fill(std::size_t count, double mean,
                                               double stddev, std::uint64_t seed);

/// "Inputs from a set" (Fig. 3c): draw `set_size` Gaussian values once, then
/// fill the buffer by sampling uniformly with replacement from that set.
[[nodiscard]] std::vector<float> value_set_fill(std::size_t count,
                                                std::size_t set_size, double mean,
                                                double stddev, std::uint64_t seed);

/// Constant fill with a single Gaussian-drawn value — the starting point of
/// the bit-similarity experiments (Fig. 4), where matrix A holds one random
/// value and B another.
[[nodiscard]] std::vector<float> constant_random_fill(std::size_t count,
                                                      double mean, double stddev,
                                                      std::uint64_t seed);

/// Uniform fill in [lo, hi) — used by ablations and tests.
[[nodiscard]] std::vector<float> uniform_fill(std::size_t count, double lo,
                                              double hi, std::uint64_t seed);

/// Summary statistics of a generated buffer (used by tests and the power
/// model's feature extraction).
struct BufferStats {
  double mean = 0.0;
  double stddev = 0.0;
  float min = 0.0f;
  float max = 0.0f;
  std::size_t zeros = 0;
};

[[nodiscard]] BufferStats compute_stats(const std::vector<float>& data);

}  // namespace gpupower::patterns
