// Fig. 2: average iteration energy by datatype for GEMM filled with
// Gaussian random variables (mean 0, stddev 210 FP / 25 INT8).  Energy
// tracks runtime (FP32 slowest => most energy per iteration) even though
// power ordering differs — the paper's argument for reporting power.
#include <cstdio>
#include <iostream>

#include "analysis/table.hpp"
#include "fig_harness.hpp"

int main() {
  using namespace gpupower;
  const core::BenchEnv env = core::read_bench_env();
  bench::print_preamble(
      env, "Fig. 2: average iteration energy, Gaussian random inputs");

  analysis::Table table(
      {"datatype", "energy/iter (mJ)", "iter (ms)", "power (W)"});
  for (const auto dtype : numeric::kAllDTypes) {
    core::ExperimentConfig config;
    config.dtype = dtype;
    config.pattern = core::baseline_gaussian_spec();
    env.apply(config);
    const auto result = core::run_experiment(config);
    table.add_row(std::string(numeric::name(dtype)),
                  {result.energy_per_iter_j * 1e3, result.iteration_s * 1e3,
                   result.power_w},
                  3);
  }
  table.print(std::cout);
  return 0;
}
