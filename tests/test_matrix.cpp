#include "gemm/matrix.hpp"

#include <gtest/gtest.h>

#include "patterns/distributions.hpp"

namespace gpupower::gemm {
namespace {

using gpupower::numeric::float16_t;
using gpupower::numeric::int8_value_t;

TEST(Matrix, ShapeAndIndexing) {
  Matrix<float> m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  m.at(2, 3) = 7.0f;
  EXPECT_EQ(m.at(2, 3), 7.0f);
  EXPECT_EQ(m.span()[2 * 4 + 3], 7.0f);
}

TEST(Matrix, Transpose) {
  Matrix<float> m(2, 3);
  float v = 0.0f;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m.at(r, c) = v++;
  }
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(t.at(c, r), m.at(r, c));
  }
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, Fill) {
  Matrix<float> m(4, 4);
  m.fill(3.5f);
  for (const float v : m.span()) EXPECT_EQ(v, 3.5f);
}

TEST(Matrix, MaterializeConvertsRoundToNearest) {
  const std::vector<float> values{1.0f, 1.0009765f, 65504.0f, -0.5f};
  const auto m = materialize<float16_t>(values, 2, 2);
  EXPECT_EQ(m.at(0, 0).bits(), float16_t(1.0f).bits());
  EXPECT_EQ(m.at(1, 0).bits(), float16_t(65504.0f).bits());
  EXPECT_EQ(m.at(1, 1).to_float(), -0.5f);
}

TEST(Matrix, MaterializeInt8Saturates) {
  const std::vector<float> values{300.0f, -300.0f, 2.4f, -2.6f};
  const auto m = materialize<int8_value_t>(values, 2, 2);
  EXPECT_EQ(m.at(0, 0).value(), 127);
  EXPECT_EQ(m.at(0, 1).value(), -128);
  EXPECT_EQ(m.at(1, 0).value(), 2);
  EXPECT_EQ(m.at(1, 1).value(), -3);
}

TEST(Matrix, RawBitsWidensToUint32) {
  const std::vector<float> values{1.0f, -1.0f};
  const auto fp16 = materialize<float16_t>(values, 1, 2);
  const auto bits = raw_bits(fp16);
  ASSERT_EQ(bits.size(), 2u);
  EXPECT_EQ(bits[0], 0x3C00u);
  EXPECT_EQ(bits[1], 0xBC00u);

  const auto i8 = materialize<int8_value_t>(values, 1, 2);
  const auto i8bits = raw_bits(i8);
  EXPECT_EQ(i8bits[0], 0x01u);
  EXPECT_EQ(i8bits[1], 0xFFu);
}

TEST(Matrix, EqualityComparesShapeAndData) {
  Matrix<float> a(2, 2), b(2, 2), c(1, 4);
  a.fill(1.0f);
  b.fill(1.0f);
  c.fill(1.0f);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);  // same data, different shape
  b.at(0, 0) = 2.0f;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace gpupower::gemm
