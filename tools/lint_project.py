#!/usr/bin/env python3
"""Project-invariant linter: the repo rules no generic tool knows.

Runs as a ctest (label: lint) and in the CI tidy+lint job.  Each rule
exists because violating it has already bitten (or would silently bite)
a documented contract of this codebase:

  artifact-write   Exported artifacts (BENCH_*.json, spec emissions, store
                   entries) must go through core::atomic_write_text so an
                   interrupted writer never leaves a torn file — raw
                   std::ofstream/fopen writers in bench/, tools/ and
                   examples/ bypass the temp+rename+fsync protocol.
  env-access       Environment access goes through core/env (read_bench_env
                   / read_store_env / env_flag_set): strict validation with
                   exit(2) on a typo'd knob.  A stray std::getenv silently
                   misconfigures a run.
  no-rand          rand()/srand() would introduce a hidden global RNG; all
                   randomness derives from patterns/rng.hpp seeded streams
                   (bit-exact reproducibility depends on it).
  no-iostream-hot  <iostream> in the hot-path kernels (gpusim, numeric,
                   patterns, gemm) drags in static init order and
                   locale-sensitive formatting; those layers are pure
                   compute and must stay stream-free.
  no-locale        std::locale/setlocale anywhere in src/ or tools/ can
                   flip decimal formatting under the canonical-key and
                   JSON round-trip guarantees ('.' is load-bearing).
  energy-double    Energy sums (*_j fields/locals) accumulate over up to
                   millions of slices; float accumulation loses joules.
                   All energy arithmetic is double.
  no-detach        Detached threads outlive scope with no join point —
                   they race process teardown and poison TSan runs.  All
                   threads in src/ are joined.
  one-clock        Raw std::chrono::steady_clock reads outside core/obs
                   fork the time base: spans, metrics and bench timings
                   must agree about "now".  Time through core::obs
                   (now_ns / Span / StopWatch) only.
  span-name        Trace span names follow the domain.verb convention
                   (lowercase dotted segments, e.g. "engine.submit",
                   "replica.fleet").  trace_report.py groupings, the
                   check_trace --require/--require-args globs and the
                   README's span table all key on these names; a
                   camelCase or undotted one silently falls out of every
                   analysis.  Checked at Span/record_span/obs_end call
                   sites and k*SpanName literal arrays.
  cmake-complete   Every src/**/*.cpp must be listed in CMakeLists.txt;
                   an unregistered TU "builds" green while dead.
  specs-valid      Every committed examples/specs/*.json must parse and
                   validate through `gpowerctl validate` — a drifted spec
                   (renamed field, stale enum value) otherwise rots
                   silently until a user copies it.  Runs only when
                   --gpowerctl points at a built binary, so the linter
                   stays usable without a build tree.

Usage: lint_project.py [--root DIR] [--gpowerctl PATH]
       exit 0 clean, 1 with findings
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys

# (rule, regex, dirs, exempt paths, message)
Finding = tuple[str, pathlib.Path, int, str]

SRC_DIRS = ("src", "bench", "tools", "examples", "tests")
HOT_DIRS = ("src/gpusim", "src/numeric", "src/patterns", "src/gemm")
ARTIFACT_DIRS = ("bench", "tools", "examples")

# Deliberate exemptions, each with its reason pinned here so the list
# stays curated rather than growing ad hoc:
EXEMPT = {
    # The atomic-write implementation itself (fopen + fsync + rename).
    "artifact-write": {"src/core/store/result_store.cpp"},
    # The one sanctioned reader of the process environment.
    "env-access": {"src/core/env.cpp", "src/core/env.hpp"},
    # Tests write deliberately torn/corrupt fixtures to prove the store
    # treats them as misses.
    "artifact-write-tests": set(),
    # The one sanctioned steady_clock site (obs::now_ns).
    "one-clock": {"src/core/obs/obs.cpp"},
}

# span-name: "domain.verb" — at least two lowercase dotted segments.
SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")
# Call sites that take a span name as their first argument.  \bSpan\b
# deliberately excludes SpanArgs.
SPAN_SITE_RE = re.compile(
    r"\bSpan\b\s*(\w+\s*)?\(|\brecord_span\s*\(|\bobs_end\s*\("
)
STRING_LITERAL_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def strip_comments(text: str, keep_strings: bool = False) -> str:
    """Blank out // and /* */ comments and (unless keep_strings) string
    literals, preserving line structure so reported line numbers stay
    exact.  keep_strings=True is for rules that inspect literal contents
    (span-name) without tripping over strings quoted in comments."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings: skip to the matching delimiter unmangled.
                m = re.match(r'R"([^ ()\\\t\v\f\n]*)\(', text[i - 1 : i + 18])
                if i > 0 and text[i - 1] == "R" and m:
                    end = text.find(")" + m.group(1) + '"', i)
                    if end == -1:
                        end = n - 1
                    seg = text[i : end + len(m.group(1)) + 2]
                    out.append("".join("\n" if ch == "\n" else " " for ch in seg))
                    i += len(seg)
                    continue
                state = "str"
                out.append('"' if keep_strings else " ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append("'" if keep_strings else " ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append(text[i : i + 2] if keep_strings else "  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            if keep_strings:
                out.append(c)
            else:
                out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def rel(path: pathlib.Path, root: pathlib.Path) -> str:
    return path.relative_to(root).as_posix()


def iter_sources(root: pathlib.Path):
    for top in SRC_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".cpp", ".hpp", ".h"):
                yield path


def grep(code: str, pattern: str):
    regex = re.compile(pattern)
    for lineno, line in enumerate(code.splitlines(), start=1):
        if regex.search(line):
            yield lineno, line.strip()


def lint_file(path: pathlib.Path, root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    rpath = rel(path, root)
    raw = path.read_text(encoding="utf-8")
    code = strip_comments(raw)

    def add(rule: str, lineno: int, msg: str) -> None:
        findings.append((rule, path, lineno, msg))

    # env-access: std::getenv / ::getenv / bare getenv outside core/env.
    if rpath not in EXEMPT["env-access"]:
        for lineno, _ in grep(code, r"\bgetenv\s*\("):
            add("env-access", lineno,
                "environment access outside core/env — use read_bench_env/"
                "read_store_env/env_is_set (strict validation, exit 2)")

    # no-rand: the C global RNG, anywhere.
    for lineno, _ in grep(code, r"(^|[^\w.:])s?rand\s*\("):
        add("no-rand", lineno,
            "rand()/srand() is a hidden global RNG — use patterns/rng.hpp "
            "seeded streams (bit-exact reproducibility)")

    # no-iostream-hot: stream machinery out of the compute kernels.
    if any(rpath.startswith(d + "/") for d in HOT_DIRS):
        for lineno, _ in grep(code, r'#\s*include\s*<iostream>'):
            add("no-iostream-hot", lineno,
                "<iostream> in a hot-path layer — kernels are pure compute; "
                "do I/O in bench/tools/core layers")

    # no-locale: locale machinery flips decimal formatting under the
    # canonical-key guarantee.
    if rpath.startswith(("src/", "tools/")):
        for lineno, _ in grep(code, r"std::locale|\bsetlocale\s*\("):
            add("no-locale", lineno,
                "locale use can flip numeric formatting — canonical keys "
                "and JSON round-trips require the C locale ('.')")

    # energy-double: no float declarations/casts for *_j energy values.
    for lineno, _ in grep(code, r"\bfloat\s+[A-Za-z_]*(_j|_joules)\b"):
        add("energy-double", lineno,
            "energy accumulator declared float — *_j sums run over up to "
            "millions of slices; use double")
    for lineno, _ in grep(code, r"static_cast<float>\(\s*[A-Za-z_.\[\]>-]*_j[\s)]"):
        add("energy-double", lineno,
            "energy value narrowed to float — keep *_j arithmetic double")

    # no-detach: every thread in the library is joined.
    if rpath.startswith("src/"):
        for lineno, _ in grep(code, r"\.detach\s*\(\s*\)"):
            add("no-detach", lineno,
                "detached thread races process teardown (and poisons TSan) "
                "— keep a handle and join")

    # one-clock: all timing flows through core/obs so traces, metrics and
    # bench numbers share a single time base.
    if rpath not in EXEMPT["one-clock"]:
        for lineno, _ in grep(code, r"\bsteady_clock\b"):
            add("one-clock", lineno,
                "raw steady_clock outside core/obs — use core::obs::now_ns"
                "/Span/StopWatch so all timings share one clock")

    # span-name: span names at Span/record_span/obs_end call sites and in
    # k*SpanName literal arrays follow domain.verb.  Sites are detected in
    # the string-blanked code; names are extracted from a comment-stripped
    # view that keeps literals, so strings quoted in doc comments don't
    # false-positive.  Sites whose name is not a literal on the site line
    # or the next (e.g. a kReplicaSpanName[i] lookup) are covered at the
    # array definition instead.
    code_with_strings = strip_comments(raw, keep_strings=True)
    cws_lines = code_with_strings.splitlines()

    def literal_window(lineno: int, span: int = 2) -> str:
        return " ".join(cws_lines[lineno - 1 : lineno - 1 + span])

    for lineno, _ in grep(code, SPAN_SITE_RE.pattern):
        m = STRING_LITERAL_RE.search(literal_window(lineno))
        if m and not SPAN_NAME_RE.match(m.group(1)):
            add("span-name", lineno,
                f'span name "{m.group(1)}" is not domain.verb — '
                "trace_report/check_trace groupings key on lowercase "
                "dotted names")
    for lineno, _ in grep(code, r"\bk\w*SpanName\s*\["):
        for offset in range(4):
            window = cws_lines[lineno - 1 + offset : lineno + offset]
            if not window:
                break
            for m in STRING_LITERAL_RE.finditer(window[0]):
                if not SPAN_NAME_RE.match(m.group(1)):
                    add("span-name", lineno + offset,
                        f'span name "{m.group(1)}" is not domain.verb — '
                        "trace_report/check_trace groupings key on "
                        "lowercase dotted names")
            if "}" in window[0]:
                break

    # artifact-write: bench/tools/examples write artifacts only through
    # atomic_write_text.  (Tests may write deliberately corrupt fixtures.)
    if (any(rpath.startswith(d + "/") for d in ARTIFACT_DIRS)
            and rpath not in EXEMPT["artifact-write"]):
        for lineno, _ in grep(code,
                              r"\bofstream\b|\bfopen\s*\([^)]*,\s*.[wa]"):
            add("artifact-write", lineno,
                "raw file writer in an artifact-producing layer — route "
                "through core::atomic_write_text (temp+fsync+rename)")

    return findings


def lint_cmake(root: pathlib.Path) -> list[Finding]:
    """cmake-complete: every src/**/*.cpp appears in CMakeLists.txt."""
    findings: list[Finding] = []
    cmake_path = root / "CMakeLists.txt"
    cmake = cmake_path.read_text(encoding="utf-8")
    for path in sorted((root / "src").rglob("*.cpp")):
        rpath = rel(path, root)
        if rpath not in cmake:
            findings.append((
                "cmake-complete", cmake_path, 1,
                f"{rpath} is not registered in CMakeLists.txt — the TU is "
                "dead weight (never compiled, never tested)"))
    return findings


def lint_specs(root: pathlib.Path, gpowerctl: pathlib.Path) -> list[Finding]:
    """specs-valid: every committed examples/specs/*.json validates through
    the real parser (`gpowerctl validate`), covering single-scenario,
    campaign, and dag forms alike."""
    findings: list[Finding] = []
    specs_dir = root / "examples" / "specs"
    if not specs_dir.is_dir():
        return findings
    for spec in sorted(specs_dir.glob("*.json")):
        proc = subprocess.run(
            [str(gpowerctl), "validate", str(spec)],
            capture_output=True, text=True)
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout).strip().splitlines()
            findings.append((
                "specs-valid", spec, 1,
                "committed spec fails `gpowerctl validate`: "
                + (detail[0] if detail else f"exit {proc.returncode}")))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=pathlib.Path(__file__).parent.parent,
                        type=pathlib.Path, help="repository root")
    parser.add_argument("--gpowerctl", default=None, type=pathlib.Path,
                        help="built gpowerctl binary; enables the "
                             "specs-valid rule (skipped when absent)")
    args = parser.parse_args()
    root = args.root.resolve()

    findings: list[Finding] = []
    checked = 0
    for path in iter_sources(root):
        checked += 1
        findings.extend(lint_file(path, root))
    findings.extend(lint_cmake(root))
    if args.gpowerctl is not None and args.gpowerctl.exists():
        findings.extend(lint_specs(root, args.gpowerctl))

    for rule, path, lineno, msg in findings:
        print(f"{rel(path, root)}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"lint_project: {len(findings)} finding(s) in {checked} files")
        return 1
    print(f"lint_project: OK ({checked} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
