#include "core/report.hpp"

#include "core/pattern_dsl.hpp"
#include "gpusim/device.hpp"

namespace gpupower::core {

analysis::JsonValue to_json(const ExperimentConfig& config,
                            const ExperimentResult& result) {
  using analysis::JsonValue;
  JsonValue rails = JsonValue::object();
  rails.set("fetch_w", JsonValue::number(result.rails.fetch_w))
      .set("operand_w", JsonValue::number(result.rails.operand_w))
      .set("multiply_w", JsonValue::number(result.rails.multiply_w))
      .set("accum_w", JsonValue::number(result.rails.accum_w))
      .set("issue_w", JsonValue::number(result.rails.issue_w));

  JsonValue protocol = JsonValue::object();
  protocol
      .set("n", JsonValue::integer(static_cast<long long>(config.n)))
      .set("seeds", JsonValue::integer(result.seeds))
      .set("iterations",
           JsonValue::integer(
               static_cast<long long>(config.effective_iterations())))
      .set("sampled_tiles",
           JsonValue::integer(
               static_cast<long long>(config.sampling.max_tiles)))
      .set("k_fraction", JsonValue::number(config.sampling.k_fraction));

  JsonValue j = JsonValue::object();
  j.set("gpu", JsonValue::string(gpusim::name(config.gpu)))
      .set("dtype", JsonValue::string(gpupower::numeric::name(config.dtype)))
      .set("pattern", JsonValue::string(to_dsl(config.pattern)))
      .set("power_w", JsonValue::number(result.power_w))
      .set("power_std_w", JsonValue::number(result.power_std_w))
      .set("iteration_s", JsonValue::number(result.iteration_s))
      .set("energy_per_iter_j", JsonValue::number(result.energy_per_iter_j))
      .set("alignment", JsonValue::number(result.alignment))
      .set("weight_fraction", JsonValue::number(result.weight_fraction))
      .set("throttled", JsonValue::boolean(result.throttled))
      .set("clock_frac", JsonValue::number(result.clock_frac))
      .set("rails", std::move(rails))
      .set("protocol", std::move(protocol));
  return j;
}

analysis::JsonValue sweep_to_json(FigureId id, const ExperimentConfig& base,
                                  std::span<const SweepEntry> entries) {
  using analysis::JsonValue;
  JsonValue series = JsonValue::array();
  for (const SweepEntry& entry : entries) {
    ExperimentConfig config = base;
    config.pattern = entry.point.spec;
    JsonValue point = to_json(config, entry.result);
    point.set("x", JsonValue::number(entry.point.x))
        .set("label", JsonValue::string(entry.point.label));
    series.push(std::move(point));
  }
  JsonValue j = JsonValue::object();
  j.set("figure", JsonValue::string(figure_key(id)))
      .set("name", JsonValue::string(figure_name(id)))
      .set("axis", JsonValue::string(figure_axis(id)))
      .set("series", std::move(series));
  return j;
}

analysis::JsonValue dvfs_to_json(const DvfsConfig& config,
                                 const DvfsResult& result) {
  using analysis::JsonValue;
  JsonValue trace = JsonValue::array();
  for (const auto& slice : result.trace.slices) {
    JsonValue point = JsonValue::object();
    point.set("t_s", JsonValue::number(slice.t_s))
        .set("offered", JsonValue::number(slice.offered))
        .set("utilization", JsonValue::number(slice.utilization))
        .set("pstate", JsonValue::integer(slice.pstate))
        .set("clock_frac", JsonValue::number(slice.clock_frac))
        .set("power_w", JsonValue::number(slice.power_w))
        .set("backlog_s", JsonValue::number(slice.backlog_s));
    trace.push(std::move(point));
  }

  JsonValue j = JsonValue::object();
  j.set("gpu", JsonValue::string(gpusim::name(config.experiment.gpu)))
      .set("dtype",
           JsonValue::string(gpupower::numeric::name(config.experiment.dtype)))
      .set("pattern", JsonValue::string(to_dsl(config.experiment.pattern)))
      .set("governor", JsonValue::string(gpusim::dvfs::to_dsl(config.governor)))
      .set("slice_s", JsonValue::number(config.slice_s))
      .set("pstates", JsonValue::integer(config.pstates))
      .set("timeline_duration_s",
           JsonValue::number(config.timeline.duration_s()))
      .set("seeds", JsonValue::integer(result.seeds))
      .set("energy_j", JsonValue::number(result.energy_j))
      .set("energy_std_j", JsonValue::number(result.energy_std_j))
      .set("avg_power_w", JsonValue::number(result.avg_power_w))
      .set("peak_power_w", JsonValue::number(result.peak_power_w))
      .set("completion_s", JsonValue::number(result.completion_s))
      .set("duration_s", JsonValue::number(result.duration_s))
      .set("backlog_max_s", JsonValue::number(result.backlog_max_s))
      .set("mean_backlog_s", JsonValue::number(result.mean_backlog_s))
      .set("transitions", JsonValue::number(result.transitions))
      .set("truncated", JsonValue::boolean(result.truncated))
      .set("trace", std::move(trace));
  return j;
}

analysis::JsonValue fleet_to_json(const FleetConfig& config,
                                  const FleetResult& result) {
  using analysis::JsonValue;
  namespace fleet = gpupower::gpusim::fleet;

  JsonValue timelines = JsonValue::array();
  for (const auto& timeline : config.timelines) {
    timelines.push(
        JsonValue::string(gpupower::gpusim::dvfs::to_dsl(timeline)));
  }

  JsonValue devices = JsonValue::array();
  for (std::size_t i = 0; i < config.devices.size(); ++i) {
    const FleetDeviceConfig& device = config.devices[i];
    JsonValue entry = JsonValue::object();
    entry.set("gpu", JsonValue::string(gpusim::name(device.gpu)))
        .set("governor", JsonValue::string(
                             gpupower::gpusim::dvfs::to_dsl(device.governor)))
        .set("timeline", JsonValue::integer(device.timeline))
        .set("priority", JsonValue::integer(device.priority));
    if (i < result.devices.size()) {
      const FleetDeviceSummary& summary = result.devices[i];
      entry.set("energy_j", JsonValue::number(summary.energy_j))
          .set("avg_power_w", JsonValue::number(summary.avg_power_w))
          .set("peak_power_w", JsonValue::number(summary.peak_power_w))
          .set("completion_s", JsonValue::number(summary.completion_s))
          .set("backlog_max_s", JsonValue::number(summary.backlog_max_s))
          .set("mean_backlog_s", JsonValue::number(summary.mean_backlog_s))
          .set("transitions", JsonValue::number(summary.transitions))
          .set("peak_temperature_c",
               JsonValue::number(summary.peak_temperature_c))
          .set("throttled_slices",
               JsonValue::number(summary.throttled_slices))
          .set("budget_clamped_slices",
               JsonValue::number(summary.budget_clamped_slices));
    }
    // Seed 0's per-slice trace for the device: the standard replay columns
    // plus the fleet-only temperature/budget series when present.
    if (i < result.trace.devices.size()) {
      const fleet::FleetDeviceRun& run = result.trace.devices[i];
      JsonValue trace = JsonValue::array();
      for (std::size_t s = 0; s < run.replay.slices.size(); ++s) {
        const auto& slice = run.replay.slices[s];
        JsonValue point = JsonValue::object();
        point.set("t_s", JsonValue::number(slice.t_s))
            .set("utilization", JsonValue::number(slice.utilization))
            .set("pstate", JsonValue::integer(slice.pstate))
            .set("power_w", JsonValue::number(slice.power_w))
            .set("backlog_s", JsonValue::number(slice.backlog_s));
        if (s < run.temperature_c.size()) {
          point.set("temperature_c",
                    JsonValue::number(run.temperature_c[s]));
        }
        if (s < run.budget_w.size()) {
          point.set("budget_w", JsonValue::number(run.budget_w[s]));
        }
        trace.push(std::move(point));
      }
      entry.set("trace", std::move(trace));
    }
    devices.push(std::move(entry));
  }

  JsonValue fleet_power = JsonValue::array();
  for (const double power_w : result.trace.fleet_power_w) {
    fleet_power.push(JsonValue::number(power_w));
  }

  JsonValue thermal = JsonValue::object();
  thermal.set("enabled", JsonValue::boolean(config.thermal.enabled));
  if (config.thermal.enabled) {
    thermal.set("ambient_c", JsonValue::number(config.thermal.ambient_c))
        .set("tau_s", JsonValue::number(config.thermal.tau_s))
        .set("trip_c", JsonValue::number(config.thermal.trip_c))
        .set("release_c", JsonValue::number(config.thermal.release_c))
        .set("throttle_pstate",
             JsonValue::integer(config.thermal.throttle_pstate));
  }

  JsonValue j = JsonValue::object();
  j.set("dtype",
        JsonValue::string(gpupower::numeric::name(config.experiment.dtype)))
      .set("pattern", JsonValue::string(to_dsl(config.experiment.pattern)))
      .set("allocator",
           JsonValue::string(fleet::name(config.allocator.policy)))
      .set("cap_w", config.allocator.capped()
                        ? JsonValue::number(config.allocator.cap_w)
                        : JsonValue::null())
      .set("thermal", std::move(thermal))
      .set("slice_s", JsonValue::number(config.slice_s))
      .set("pstates", JsonValue::integer(config.pstates))
      .set("timelines", std::move(timelines))
      .set("seeds", JsonValue::integer(result.seeds))
      .set("energy_j", JsonValue::number(result.energy_j))
      .set("energy_std_j", JsonValue::number(result.energy_std_j))
      .set("avg_power_w", JsonValue::number(result.avg_power_w))
      .set("peak_power_w", JsonValue::number(result.peak_power_w))
      .set("completion_s", JsonValue::number(result.completion_s))
      .set("duration_s", JsonValue::number(result.duration_s))
      .set("backlog_max_s", JsonValue::number(result.backlog_max_s))
      .set("backlog_p99_s", JsonValue::number(result.backlog_p99_s))
      .set("mean_backlog_s", JsonValue::number(result.mean_backlog_s))
      .set("transitions", JsonValue::number(result.transitions))
      .set("over_cap_slices", JsonValue::number(result.over_cap_slices))
      .set("truncated", JsonValue::boolean(result.truncated))
      .set("devices", std::move(devices))
      .set("fleet_power_w", std::move(fleet_power));
  return j;
}

}  // namespace gpupower::core
