// ScenarioConfig: the type-erased submission unit of the experiment engine.
// The engine grew three parallel families — classic static experiments,
// DVFS timeline replays, and power-capped fleets — each with its own
// handle, cache key, validator, and JSON exporter.  A ScenarioConfig wraps
// any of them behind one type, and a registry of ScenarioKindInfo
// descriptors carries the per-kind hooks (validate, canonical cache key,
// per-seed replica runner, in-seed-order reduction, JSON export), so the
// engine, the spec front end (core/spec.hpp), and the CLI dispatch through
// exactly one code path.  Adding a scenario kind means adding one variant
// alternative and one descriptor row — not re-plumbing seven layers.
//
// The typed submit_* families remain as thin wrappers over the type-erased
// path, bit-identical by construction: same worker pool, same cache, same
// seed-order reduction.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <variant>

#include "analysis/json.hpp"
#include "core/dvfs_experiment.hpp"
#include "core/experiment.hpp"
#include "core/fleet_experiment.hpp"

namespace gpupower::core {

enum class ScenarioKind {
  kStatic,  ///< classic steady-state experiment (ExperimentConfig)
  kDvfs,    ///< time-resolved P-state replay (DvfsConfig)
  kFleet,   ///< multi-GPU power-capped replay (FleetConfig)
};

inline constexpr ScenarioKind kAllScenarioKinds[] = {
    ScenarioKind::kStatic, ScenarioKind::kDvfs, ScenarioKind::kFleet};
inline constexpr std::size_t kScenarioKindCount = 3;

/// Canonical lower-case kind name ("static" | "dvfs" | "fleet") — the
/// spelling spec files and stats breakdowns use.
[[nodiscard]] std::string_view name(ScenarioKind kind) noexcept;

/// Parses a kind name ("static" accepts the "experiment" alias).
[[nodiscard]] bool parse_scenario_kind(std::string_view text,
                                       ScenarioKind& out) noexcept;

/// One submission of any scenario kind.  Implicitly constructible from the
/// typed configs so existing call sites read naturally:
///   engine.submit(ScenarioConfig(fleet_config));
class ScenarioConfig {
 public:
  /// Defaults to a static experiment with ExperimentConfig defaults.
  ScenarioConfig() = default;
  ScenarioConfig(ExperimentConfig config) : value_(std::move(config)) {}
  ScenarioConfig(DvfsConfig config) : value_(std::move(config)) {}
  ScenarioConfig(FleetConfig config) : value_(std::move(config)) {}

  [[nodiscard]] ScenarioKind kind() const noexcept {
    return static_cast<ScenarioKind>(value_.index());
  }

  // Typed accessors; throw std::logic_error on a kind mismatch so a wrong
  // cast surfaces as a pointed message instead of bad_variant_access.
  [[nodiscard]] const ExperimentConfig& static_config() const;
  [[nodiscard]] const DvfsConfig& dvfs() const;
  [[nodiscard]] const FleetConfig& fleet() const;

  /// The shared GEMM working point every kind embeds (gpu/dtype/n/pattern/
  /// seeds/sampling) — what generic code like the engine's seed fan-out
  /// needs without caring about the kind.
  [[nodiscard]] const ExperimentConfig& experiment() const noexcept;
  [[nodiscard]] int seeds() const noexcept { return experiment().seeds; }

 private:
  std::variant<ExperimentConfig, DvfsConfig, FleetConfig> value_;
};

/// The matching type-erased result.  Default-constructed results are
/// empty (valid() == false) until a reduction fills them.
class ScenarioResult {
 public:
  ScenarioResult() = default;
  ScenarioResult(ExperimentResult result) : value_(std::move(result)) {}
  ScenarioResult(DvfsResult result) : value_(std::move(result)) {}
  ScenarioResult(FleetResult result) : value_(std::move(result)) {}

  [[nodiscard]] bool valid() const noexcept { return value_.index() != 0; }
  /// Kind of the held result; kStatic for an empty result.
  [[nodiscard]] ScenarioKind kind() const noexcept {
    return value_.index() == 0
               ? ScenarioKind::kStatic
               : static_cast<ScenarioKind>(value_.index() - 1);
  }

  [[nodiscard]] const ExperimentResult& static_result() const;
  [[nodiscard]] const DvfsResult& dvfs() const;
  [[nodiscard]] const FleetResult& fleet() const;

 private:
  std::variant<std::monostate, ExperimentResult, DvfsResult, FleetResult>
      value_;
};

/// One seed replica of any kind (monostate = slot not yet computed).
using ScenarioReplica =
    std::variant<std::monostate, SeedReplicaResult,
                 gpupower::gpusim::dvfs::ReplayResult,
                 gpupower::gpusim::fleet::FleetRun>;

/// The per-kind hooks the engine and spec front end dispatch through.
/// Every hook is a pure function of its arguments; run_replica must be
/// thread-safe (the engine fans replicas across its worker pool) and
/// reduce must fold in seed order (the bit-identical-to-serial contract).
struct ScenarioKindInfo {
  ScenarioKind kind{};
  std::string_view name;
  /// Empty string when the config is submittable; else the first problem
  /// (the engine throws std::invalid_argument with it).
  std::string (*validate)(const ScenarioConfig&) = nullptr;
  /// Canonical cache key within the kind; the engine prefixes the kind
  /// name, so keys of different kinds can never collide.
  std::string (*canonical_key)(const ScenarioConfig&) = nullptr;
  ScenarioReplica (*run_replica)(const ScenarioConfig&, int seed_index) =
      nullptr;
  /// Consumes the replica slots (they are moved from), folding in seed
  /// order.
  ScenarioResult (*reduce)(const ScenarioConfig&,
                           std::span<ScenarioReplica>) = nullptr;
  analysis::JsonValue (*to_json)(const ScenarioConfig&,
                                 const ScenarioResult&) = nullptr;
  /// Exact, complete serialisation of the kind's result — every field,
  /// including the full per-slice traces, at round-trip precision.  This is
  /// the persistent result store's value format (core/store/), distinct
  /// from the display-oriented to_json above, which summarises and drops
  /// trace columns.
  analysis::JsonValue (*result_to_json)(const ScenarioResult&) = nullptr;
  /// Inverse of result_to_json: fills `out` from a stored document.
  /// Returns false (with the first problem in `error`) on any missing or
  /// mistyped field — the store treats a failed parse as a miss, never an
  /// error.
  bool (*result_from_json)(const analysis::JsonValue&, ScenarioResult&,
                           std::string&) = nullptr;
};

/// The registry row for a kind (static storage).
[[nodiscard]] const ScenarioKindInfo& scenario_kind_info(
    ScenarioKind kind) noexcept;

// --- registry-dispatching conveniences -------------------------------------

/// Empty when submittable, else the first problem.
[[nodiscard]] std::string validate_scenario(const ScenarioConfig& config);

/// Kind-prefixed canonical key: equal keys produce bit-identical results.
[[nodiscard]] std::string canonical_scenario_key(const ScenarioConfig& config);

/// Serial reference: every seed replica in order, reduced.  Prefer
/// ExperimentEngine::submit for anything batched.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config);

/// Structured export through the kind's exporter (to_json / dvfs_to_json /
/// fleet_to_json).
[[nodiscard]] analysis::JsonValue scenario_to_json(const ScenarioConfig& config,
                                                   const ScenarioResult& result);

/// Full-fidelity result serialisation through the kind's result codec (the
/// persistent store's value format): dumping and re-parsing reproduces the
/// result bit-identically.  Throws std::logic_error on an empty result.
[[nodiscard]] analysis::JsonValue scenario_result_to_json(
    const ScenarioResult& result);

/// Parses a scenario_result_to_json document of the given kind.  Returns
/// false (with the first problem in `error`) on malformed input; never
/// throws on bad data.
[[nodiscard]] bool scenario_result_from_json(ScenarioKind kind,
                                             const analysis::JsonValue& doc,
                                             ScenarioResult& out,
                                             std::string& error);

}  // namespace gpupower::core
