#include "numeric/float16.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace gpupower::numeric {
namespace {

TEST(Float16, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    const float16_t h(static_cast<float>(i));
    EXPECT_EQ(h.to_float(), static_cast<float>(i)) << "value " << i;
  }
}

TEST(Float16, KnownBitPatterns) {
  EXPECT_EQ(float16_t(0.0f).bits(), 0x0000u);
  EXPECT_EQ(float16_t(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(float16_t(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(float16_t(-1.0f).bits(), 0xBC00u);
  EXPECT_EQ(float16_t(2.0f).bits(), 0x4000u);
  EXPECT_EQ(float16_t(0.5f).bits(), 0x3800u);
  EXPECT_EQ(float16_t(65504.0f).bits(), 0x7BFFu);  // largest finite half
  EXPECT_EQ(float16_t(0x1p-14f).bits(), 0x0400u);  // smallest normal
  EXPECT_EQ(float16_t(0x1p-24f).bits(), 0x0001u);  // smallest subnormal
}

TEST(Float16, OverflowToInfinity) {
  EXPECT_TRUE(float16_t(65536.0f).is_inf());
  EXPECT_TRUE(float16_t(1e30f).is_inf());
  EXPECT_TRUE(float16_t(-1e30f).is_inf());
  EXPECT_TRUE(float16_t(-1e30f).signbit());
  EXPECT_TRUE(float16_t(std::numeric_limits<float>::infinity()).is_inf());
}

TEST(Float16, OverflowBoundary) {
  // 65504 is the largest finite half; [65504, 65520) rounds to 65504,
  // [65520, +inf) rounds to infinity under round-to-nearest-even.
  EXPECT_EQ(float16_t(65519.0f).bits(), 0x7BFFu);
  EXPECT_TRUE(float16_t(65520.0f).is_inf());
}

TEST(Float16, NaNPropagation) {
  const float16_t h(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(h.is_nan());
  EXPECT_TRUE(std::isnan(h.to_float()));
  EXPECT_FALSE(h == h);  // NaN compares unequal to itself
}

TEST(Float16, RoundToNearestEvenTies) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10);
  // RNE keeps the even mantissa (1.0).
  EXPECT_EQ(float16_t(1.0f + 0x1p-11f).bits(), 0x3C00u);
  // 1 + 3*2^-11 is halfway between 1+2^-10 (odd) and 1+2^-9 (even): round up.
  EXPECT_EQ(float16_t(1.0f + 3 * 0x1p-11f).bits(), 0x3C02u);
  // Slightly above the tie must round up.
  EXPECT_EQ(float16_t(1.0f + 0x1p-11f + 0x1p-20f).bits(), 0x3C01u);
}

TEST(Float16, SubnormalRounding) {
  // Half of the smallest subnormal is a tie with zero: RNE -> zero (even).
  EXPECT_EQ(float16_t(0x1p-25f).bits(), 0x0000u);
  // Just above the tie rounds up to the smallest subnormal.
  EXPECT_EQ(float16_t(0x1p-25f + 0x1p-40f).bits(), 0x0001u);
  // 1.5 * 2^-24 is a tie between subnormal 1 and 2: RNE -> 2 (even).
  EXPECT_EQ(float16_t(1.5f * 0x1p-24f).bits(), 0x0002u);
}

TEST(Float16, RoundTripAllFiniteBitPatterns) {
  // Every finite half converts to float and back to the identical bits.
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const auto h = float16_t::from_bits(static_cast<std::uint16_t>(bits));
    if (h.is_nan() || h.is_inf()) continue;
    const float16_t back(h.to_float());
    EXPECT_EQ(back.bits(), h.bits()) << "bits 0x" << std::hex << bits;
  }
}

TEST(Float16, ConversionIsMonotonic) {
  // Increasing floats never produce decreasing halves.
  float prev_value = -70000.0f;
  float16_t prev(prev_value);
  for (float v = -70000.0f; v <= 70000.0f; v += 173.31f) {
    const float16_t h(v);
    if (!h.is_nan() && !prev.is_nan()) {
      EXPECT_FALSE(h.to_float() < prev.to_float())
          << "not monotonic at " << v;
    }
    prev = h;
  }
}

TEST(Float16, SubnormalClassification) {
  EXPECT_TRUE(float16_t::from_bits(0x0001u).is_subnormal());
  EXPECT_TRUE(float16_t::from_bits(0x03FFu).is_subnormal());
  EXPECT_FALSE(float16_t::from_bits(0x0400u).is_subnormal());
  EXPECT_FALSE(float16_t::from_bits(0x0000u).is_subnormal());
}

TEST(Float16, SignedZeroEquality) {
  EXPECT_TRUE(float16_t(0.0f) == float16_t(-0.0f));
}

TEST(Float16, Arithmetic) {
  EXPECT_EQ((float16_t(1.5f) + float16_t(2.5f)).to_float(), 4.0f);
  EXPECT_EQ((float16_t(3.0f) * float16_t(0.5f)).to_float(), 1.5f);
  EXPECT_EQ((float16_t(1.0f) - float16_t(4.0f)).to_float(), -3.0f);
}

class Float16SubnormalSweep : public ::testing::TestWithParam<int> {};

TEST_P(Float16SubnormalSweep, ExactSubnormalMultiples) {
  // k * 2^-24 is exactly representable for k in [0, 1023].
  const int k = GetParam();
  const float value = static_cast<float>(k) * 0x1p-24f;
  const float16_t h(value);
  EXPECT_EQ(h.bits(), static_cast<std::uint16_t>(k));
  EXPECT_EQ(h.to_float(), value);
}

INSTANTIATE_TEST_SUITE_P(SubnormalGrid, Float16SubnormalSweep,
                         ::testing::Values(0, 1, 2, 3, 7, 15, 100, 511, 512,
                                           1000, 1023));

}  // namespace
}  // namespace gpupower::numeric
