#include "analysis/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/figures.hpp"
#include "core/report.hpp"

namespace gpupower::analysis {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(JsonValue::null().dump(), "null");
  EXPECT_EQ(JsonValue::boolean(true).dump(), "true");
  EXPECT_EQ(JsonValue::boolean(false).dump(), "false");
  EXPECT_EQ(JsonValue::integer(-42).dump(), "-42");
  EXPECT_EQ(JsonValue::number(2.5).dump(), "2.5");
  EXPECT_EQ(JsonValue::string("hi").dump(), "\"hi\"");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(JsonValue::number(std::nan("")).dump(), "null");
  EXPECT_EQ(JsonValue::number(INFINITY).dump(), "null");
}

TEST(Json, Escaping) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonValue::string("x\ty").dump(), "\"x\\ty\"");
}

TEST(Json, ObjectsAndArraysCompact) {
  JsonValue obj = JsonValue::object();
  obj.set("a", JsonValue::integer(1)).set("b", JsonValue::string("two"));
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":\"two\"}");

  JsonValue arr = JsonValue::array();
  arr.push(JsonValue::integer(1)).push(JsonValue::boolean(false));
  EXPECT_EQ(arr.dump(), "[1,false]");

  EXPECT_EQ(JsonValue::object().dump(), "{}");
  EXPECT_EQ(JsonValue::array().dump(), "[]");
}

TEST(Json, PrettyPrinting) {
  JsonValue obj = JsonValue::object();
  obj.set("k", JsonValue::integer(1));
  EXPECT_EQ(obj.dump(true), "{\n  \"k\": 1\n}");
}

TEST(Json, Nesting) {
  JsonValue inner = JsonValue::array();
  inner.push(JsonValue::number(1.5));
  JsonValue obj = JsonValue::object();
  obj.set("xs", std::move(inner));
  EXPECT_EQ(obj.dump(), "{\"xs\":[1.5]}");
}

TEST(Report, ExperimentToJsonCarriesEverything) {
  gpupower::core::ExperimentConfig config;
  config.dtype = gpupower::numeric::DType::kFP16;
  config.n = 128;
  config.seeds = 1;
  config.pattern = gpupower::core::baseline_gaussian_spec();
  const auto result = gpupower::core::run_experiment(config);
  const std::string json = gpupower::core::to_json(config, result).dump();
  EXPECT_NE(json.find("\"gpu\":\"NVIDIA A100 PCIe 40GB\""), std::string::npos);
  EXPECT_NE(json.find("\"dtype\":\"FP16\""), std::string::npos);
  EXPECT_NE(json.find("\"pattern\":\"gaussian(mean=0)\""), std::string::npos);
  EXPECT_NE(json.find("\"power_w\":"), std::string::npos);
  EXPECT_NE(json.find("\"rails\":"), std::string::npos);
  EXPECT_NE(json.find("\"protocol\":"), std::string::npos);
}

TEST(Report, SweepToJsonShapesSeries) {
  using gpupower::core::FigureId;
  gpupower::core::ExperimentConfig base;
  base.dtype = gpupower::numeric::DType::kFP16;
  base.n = 128;
  base.seeds = 1;
  const auto sweep =
      gpupower::core::figure_sweep(FigureId::kFig6aSparsity);
  std::vector<gpupower::core::SweepEntry> entries;
  for (std::size_t i = 0; i < 2; ++i) {
    gpupower::core::ExperimentConfig config = base;
    config.pattern = sweep[i].spec;
    entries.push_back({sweep[i], gpupower::core::run_experiment(config)});
  }
  const std::string json =
      gpupower::core::sweep_to_json(FigureId::kFig6aSparsity, base, entries)
          .dump();
  EXPECT_NE(json.find("\"figure\":\"fig6a\""), std::string::npos);
  EXPECT_NE(json.find("\"series\":["), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"0%\""), std::string::npos);
}

}  // namespace
}  // namespace gpupower::analysis
