// Clang thread-safety annotations (-Wthread-safety) for the engine's
// shared mutable state, wrapped so every other compiler sees plain
// std::mutex semantics with zero overhead.
//
// The analysis is static and per-TU: fields declare which capability
// (mutex) guards them (`GPUPOWER_GUARDED_BY`), functions declare which
// capabilities they expect held (`GPUPOWER_REQUIRES`), and clang proves at
// compile time that no annotated field is touched without its lock.  CI
// compiles the tree with clang and `-Wthread-safety -Werror`, so a new
// unsynchronized access to annotated state is a build break, not a latent
// race for TSan to catch later.
//
// std::mutex itself carries no annotations, so this header provides the
// standard annotated wrapper trio (the Abseil/LLVM idiom):
//
//   Mutex      an annotated capability over std::mutex
//   MutexLock  scoped acquire/release (std::lock_guard shape)
//   CondVar    condition variable whose wait keeps the capability held
//              from the analysis's point of view, exactly like
//              std::condition_variable with std::unique_lock
//
// Usage:
//
//   struct State {
//     mutable Mutex mutex;
//     mutable CondVar cv;
//     bool done GPUPOWER_GUARDED_BY(mutex) = false;
//   };
//
//   void wait_done(State& s) {
//     MutexLock lock(s.mutex);
//     while (!s.done) s.cv.wait(s.mutex);   // reads of `done` are proven
//   }
//
// Annotate sparingly and truthfully: a field is GUARDED_BY a mutex only if
// EVERY access holds it.  Deliberately unguarded fields (atomics,
// publish-once immutable state, disjoint-slot arrays) stay unannotated
// with a comment saying why — the analysis then ignores them, and TSan
// remains the dynamic check for those protocols.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

// Attribute plumbing: real attributes under clang, no-ops elsewhere (gcc,
// MSVC).  `__has_attribute` keeps ancient clangs working.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define GPUPOWER_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GPUPOWER_THREAD_ANNOTATION
#define GPUPOWER_THREAD_ANNOTATION(x)  // not clang: annotations vanish
#endif

/// Marks a type as a capability (lock) the analysis can track.
#define GPUPOWER_CAPABILITY(x) GPUPOWER_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define GPUPOWER_SCOPED_CAPABILITY GPUPOWER_THREAD_ANNOTATION(scoped_lockable)

/// Field/variable is protected by the given capability: every read and
/// write must hold it.
#define GPUPOWER_GUARDED_BY(x) GPUPOWER_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given capability.
#define GPUPOWER_PT_GUARDED_BY(x) GPUPOWER_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (and keeps it held).
#define GPUPOWER_REQUIRES(...) \
  GPUPOWER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (held on return, not on entry).
#define GPUPOWER_ACQUIRE(...) \
  GPUPOWER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define GPUPOWER_RELEASE(...) \
  GPUPOWER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `ret`.
#define GPUPOWER_TRY_ACQUIRE(ret, ...) \
  GPUPOWER_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard
/// for functions that acquire it themselves).
#define GPUPOWER_EXCLUDES(...) \
  GPUPOWER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for protocols the static analysis cannot express
/// (lock-free publication, adopt-lock dances).  Every use carries a
/// comment explaining the actual synchronisation.
#define GPUPOWER_NO_THREAD_SAFETY_ANALYSIS \
  GPUPOWER_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gpupower::core {

class CondVar;

/// std::mutex with the capability annotation the analysis needs.  Same
/// size and cost; BasicLockable, so it still works with std:: lock
/// utilities where needed.
class GPUPOWER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GPUPOWER_ACQUIRE() { mutex_.lock(); }
  void unlock() GPUPOWER_RELEASE() { mutex_.unlock(); }
  bool try_lock() GPUPOWER_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// Scoped lock over Mutex — std::lock_guard with annotations.
class GPUPOWER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) GPUPOWER_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() GPUPOWER_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable for Mutex.  wait() must be called with the mutex
/// held (enforced at call sites by GPUPOWER_REQUIRES); it atomically
/// releases the native mutex while sleeping and reacquires it before
/// returning, so from the caller's (and the analysis's) perspective the
/// capability is held across the call — the std::condition_variable
/// contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One bare wait; callers loop on their predicate while holding `mutex`
  /// so every predicate read is visible to the analysis.
  void wait(Mutex& mutex) GPUPOWER_REQUIRES(mutex)
      GPUPOWER_NO_THREAD_SAFETY_ANALYSIS {
    // Adopt the already-held native mutex for the wait, then release the
    // std::unique_lock wrapper so ownership stays with the caller's scoped
    // lock.  The capability is held on entry and on exit, matching the
    // REQUIRES contract above.
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gpupower::core
