// Micro benchmark for the activity hot path: times estimate_activity's
// batched bit-plane kernel against the reference observer walk on the
// fig. 1 protocol shape (N=1024, sampled plan), one case per datatype, and
// asserts the two backends stay bit-identical while timing.  Emits the
// measurements as BENCH_activity.json (tools/bench_export) so the speedup
// is tracked as a committed trajectory file and a CI artifact.
//
// Knobs: GPUPOWER_N (default 1024 here, the acceptance shape),
// GPUPOWER_TILES / GPUPOWER_KFRAC (default 12 / 0.5, the bench-harness
// sampled plan); --out <path> changes the JSON destination (default
// BENCH_activity.json in the working directory).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/env.hpp"
#include "core/obs/obs.hpp"
#include "gemm/matrix.hpp"
#include "gpusim/activity.hpp"
#include "patterns/distributions.hpp"
#include "tools/bench_export.hpp"

namespace {

using namespace gpupower;

template <typename T>
std::pair<double, gpusim::ActivityEstimate> time_backend(
    const gemm::GemmProblem& problem, const gemm::Matrix<T>& a,
    const gemm::Matrix<T>& b, const gemm::TileConfig& config,
    const gpusim::SamplingPlan& plan, gpusim::ActivityBackend backend,
    int reps) {
  double best_s = 1e300;
  gpusim::ActivityEstimate est;
  core::obs::StopWatch watch;
  for (int r = 0; r < reps; ++r) {
    watch.reset();
    est = gpusim::estimate_activity(problem, a, b, config, plan, backend);
    best_s = std::min(best_s, watch.seconds());
  }
  return {best_s, est};
}

template <typename T>
tools::BenchCase run_case(const char* name, numeric::DType dtype,
                          std::size_t n, const gpusim::SamplingPlan& plan,
                          analysis::Table& table, double& speedup_product) {
  const auto a = gemm::materialize<T>(
      patterns::gaussian_fill(n * n, 0.0, 210.0, 1), n, n);
  const auto b = gemm::materialize<T>(
      patterns::gaussian_fill(n * n, 0.0, 210.0, 2), n, n);
  const auto problem = gemm::GemmProblem::square(n);
  const auto config = gemm::TileConfig::for_dtype(dtype);

  const auto [observer_s, observer_est] = time_backend(
      problem, a, b, config, plan, gpusim::ActivityBackend::kObserver, 3);
  const auto [batched_s, batched_est] = time_backend(
      problem, a, b, config, plan, gpusim::ActivityBackend::kBatched, 5);

  if (!(observer_est.totals == batched_est.totals)) {
    std::fprintf(stderr,
                 "micro_activity_kernel: PARITY FAILURE for %s — batched "
                 "totals diverge from the observer walk\n",
                 name);
    std::exit(1);
  }

  const double speedup = observer_s / batched_s;
  speedup_product *= speedup;
  table.add_row(name, {observer_s * 1e3, batched_s * 1e3, speedup}, 3);

  tools::BenchCase result;
  result.name = name;
  result.metrics = {{"observer_ms", observer_s * 1e3},
                    {"batched_ms", batched_s * 1e3},
                    {"speedup", speedup},
                    {"macs", static_cast<double>(batched_est.totals.macs)}};
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_activity.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const core::BenchEnv env = core::read_bench_env();
  // The acceptance shape is the fig. 1 protocol: N=1024 with the default
  // sampled plan.  read_bench_env defaults N to 512 for CI speed, so only
  // honour it when explicitly set.
  const std::size_t n =
      core::env_is_set("GPUPOWER_N") ? env.n : std::size_t{1024};
  gpusim::SamplingPlan plan;
  plan.max_tiles = env.tiles;
  plan.k_fraction = env.k_fraction;

  char protocol[160];
  std::snprintf(protocol, sizeof protocol,
                "N=%zu sampled(tiles=%zu, kfrac=%.2f), best-of-reps wall "
                "time, parity-checked",
                n, plan.max_tiles, plan.k_fraction);
  std::printf("activity kernel micro bench — %s\n\n", protocol);

  analysis::Table table(
      {"datatype", "observer (ms)", "batched (ms)", "speedup"});
  double speedup_product = 1.0;
  std::vector<tools::BenchCase> cases;
  cases.push_back(run_case<float>("fp32", numeric::DType::kFP32, n, plan,
                                  table, speedup_product));
  cases.push_back(run_case<numeric::float16_t>(
      "fp16", numeric::DType::kFP16, n, plan, table, speedup_product));
  cases.push_back(run_case<numeric::float16_t>(
      "fp16t", numeric::DType::kFP16T, n, plan, table, speedup_product));
  cases.push_back(run_case<numeric::int8_value_t>(
      "int8", numeric::DType::kINT8, n, plan, table, speedup_product));

  const double geomean =
      std::pow(speedup_product, 1.0 / static_cast<double>(cases.size()));
  tools::BenchCase summary;
  summary.name = "geomean";
  summary.metrics = {{"speedup", geomean}};
  cases.push_back(summary);

  table.print(std::cout);
  std::printf("\ngeomean speedup: %.2fx\n", geomean);

  const auto doc = tools::bench_document("activity_kernel", protocol, cases);
  if (!tools::write_bench_json(out_path, doc)) {
    std::fprintf(stderr, "micro_activity_kernel: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
