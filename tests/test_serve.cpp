// Serve-loop suite: the NDJSON session protocol over plain streams — one
// event per line, accepted/result/done framing, per-point metrics that
// match the direct run_scenario path exactly, malformed requests that
// never kill the session, and cross-session dedup through one shared
// engine.
#include "core/store/serve.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/json.hpp"
#include "core/engine.hpp"
#include "core/spec.hpp"

namespace gpupower::core {
namespace {

using analysis::JsonValue;

const char kCampaignSpec[] =
    R"json({"scenario": "campaign", "name": "serve_fixture",)json"
    R"json( "base": {"scenario": "static", "experiment": {"gpu": "a100",)json"
    R"json( "dtype": "fp16", "n": 64, "seeds": 1,)json"
    R"json( "pattern": "gaussian(sigma=210)",)json"
    R"json( "sampling": {"tiles": 4, "k_fraction": 0.5}}},)json"
    R"json( "axes": [{"field": "experiment.n", "values": [)json"
    R"json( {"value": 64, "label": "n64"}, {"value": 96, "label": "n96"}]}]})json";

const char kSingleSpec[] =
    R"json({"scenario": "static", "experiment": {"gpu": "a100",)json"
    R"json( "dtype": "fp16", "n": 64, "seeds": 1,)json"
    R"json( "pattern": "gaussian(sigma=210)",)json"
    R"json( "sampling": {"tiles": 4, "k_fraction": 0.5}}})json";

ExperimentEngine make_engine() {
  EngineOptions options;
  options.workers = 2;
  return ExperimentEngine(options);
}

/// Runs one session over string streams and parses every emitted line.
std::vector<JsonValue> run_session(ExperimentEngine& engine,
                                   const std::string& input,
                                   const ServeOptions& options = {}) {
  std::istringstream in(input);
  std::ostringstream out;
  (void)serve_session(engine, in, out, options);

  std::vector<JsonValue> events;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const auto parsed = analysis::json_parse(line);
    EXPECT_TRUE(parsed.ok) << "unparseable event line: " << line;
    if (parsed.ok) events.push_back(parsed.value);
  }
  return events;
}

std::string str_field(const JsonValue& event, const char* key) {
  const JsonValue* value = event.find(key);
  return value != nullptr ? value->as_string() : std::string();
}

double num_field(const JsonValue& event, const char* key) {
  const JsonValue* value = event.find(key);
  return value != nullptr ? value->as_number(-1.0) : -1.0;
}

std::string event_type(const JsonValue& event) {
  return str_field(event, "type");
}

// One campaign request: accepted first, every point exactly once, done
// last, and each point's metrics bit-equal to the direct run_scenario
// path (the engine result and the serial result are bit-identical by the
// engine's own contract; JSON round-trips doubles exactly).
TEST(ServeSession, StreamsCampaignResultsMatchingDirectRuns) {
  ExperimentEngine engine = make_engine();
  const auto events = run_session(engine, std::string(kCampaignSpec) + "\n");

  const SpecParseResult spec = parse_scenario_spec_text(kCampaignSpec);
  ASSERT_TRUE(spec.ok) << spec.error;
  std::vector<CampaignPoint> points;
  std::string error;
  ASSERT_TRUE(expand_campaign(spec.spec, points, error)) << error;

  ASSERT_EQ(events.size(), points.size() + 2);
  EXPECT_EQ(event_type(events.front()), "accepted");
  EXPECT_EQ(num_field(events.front(), "points"), 2.0);
  EXPECT_EQ(str_field(events.front(), "scenario"), "static");
  EXPECT_EQ(event_type(events.back()), "done");

  std::map<std::string, const JsonValue*> by_label;
  for (const JsonValue& event : events) {
    if (event_type(event) != "result") continue;
    by_label[str_field(event, "point")] = &event;
  }
  ASSERT_EQ(by_label.size(), points.size());

  for (const auto& point : points) {
    ASSERT_TRUE(by_label.count(point.label)) << point.label;
    const JsonValue& event = *by_label[point.label];
    const JsonValue* metrics = event.find("metrics");
    ASSERT_NE(metrics, nullptr);
    const ScenarioResult reference = run_scenario(point.config);
    for (const auto& [metric, value] : scenario_summary_metrics(reference)) {
      const JsonValue* emitted = metrics->find(metric);
      ASSERT_NE(emitted, nullptr) << metric;
      EXPECT_DOUBLE_EQ(emitted->as_number(0), value)
          << point.label << "." << metric;
    }
  }
}

// A single-scenario request is labelled with its kind name.
TEST(ServeSession, SingleScenarioPointIsLabelledByKind) {
  ExperimentEngine engine = make_engine();
  const auto events = run_session(engine, std::string(kSingleSpec) + "\n");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(event_type(events[1]), "result");
  EXPECT_EQ(str_field(events[1], "point"), "static");
  EXPECT_EQ(str_field(events[1], "scenario"), "static");
}

// One bad line must not kill a long-lived service: the session reports an
// error for request 1 and still serves request 2.
TEST(ServeSession, MalformedLineEmitsErrorAndSessionContinues) {
  ExperimentEngine engine = make_engine();
  const auto events = run_session(
      engine, "this is not a spec\n" + std::string(kSingleSpec) + "\n");

  ASSERT_GE(events.size(), 4u);
  std::size_t errors = 0;
  std::size_t results = 0;
  for (const JsonValue& event : events) {
    if (event_type(event) == "error") {
      ++errors;
      EXPECT_EQ(num_field(event, "req"), 1.0);
    }
    if (event_type(event) == "result") {
      ++results;
      EXPECT_EQ(num_field(event, "req"), 2.0);
    }
  }
  EXPECT_EQ(errors, 1u);
  EXPECT_EQ(results, 1u);
}

// A spec that parses but fails validation (zero seeds) also stays an
// error event, not an exception out of the session.
TEST(ServeSession, InvalidConfigBecomesErrorEvent) {
  ExperimentEngine engine = make_engine();
  const std::string bad =
      R"json({"scenario": "static", "experiment": {"dtype": "fp16", "n": 64,)json"
      R"json( "seeds": 0, "pattern": "gaussian(sigma=210)"}})json";
  const auto events = run_session(engine, bad + "\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(event_type(events.front()), "error");
}

// The `stats` keyword answers with the engine counter line.
TEST(ServeSession, StatsKeywordEmitsEngineCounters) {
  ExperimentEngine engine = make_engine();
  const auto events = run_session(engine, "stats\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(event_type(events.front()), "stats");
  EXPECT_NE(str_field(events.front(), "engine").find("submitted"),
            std::string::npos);
}

// {"cmd":"stats"} is the JSON spelling of the same request — a line with a
// "cmd" key is a command, never a spec.
TEST(ServeSession, JsonCmdStatsEmitsStatsEvent) {
  ExperimentEngine engine = make_engine();
  const auto events = run_session(engine, "{\"cmd\":\"stats\"}\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(event_type(events.front()), "stats");
}

// An unknown command stays an error event (naming the supported command),
// not a spec-parse error and not a dead session.
TEST(ServeSession, UnknownCmdEmitsErrorAndSessionContinues) {
  ExperimentEngine engine = make_engine();
  const auto events = run_session(
      engine, "{\"cmd\":\"selfdestruct\"}\n" + std::string(kSingleSpec) + "\n");
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(event_type(events.front()), "error");
  EXPECT_NE(str_field(events.front(), "error").find("cmd"),
            std::string::npos);
  std::size_t results = 0;
  for (const JsonValue& event : events) {
    if (event_type(event) == "result") ++results;
  }
  EXPECT_EQ(results, 1u);
}

// Pins the stats-event schema to ExperimentEngine::metrics_json(): one
// schema shared by serve and `gpowerctl --metrics-out`, so consumers of
// either never see them drift apart.
TEST(ServeSession, StatsEventEmbedsTheMetricsJsonSchema) {
  ExperimentEngine engine = make_engine();
  const auto events =
      run_session(engine, std::string(kSingleSpec) + "\nstats\n");
  const JsonValue* stats_event = nullptr;
  for (const JsonValue& event : events) {
    if (event_type(event) == "stats") stats_event = &event;
  }
  ASSERT_NE(stats_event, nullptr);
  const JsonValue& stats = *stats_event;

  const JsonValue* metrics = stats.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* schema = metrics->find("gpupower_metrics");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_number(0), 1.0);

  // Same top-level keys as a direct metrics_json() call.
  const JsonValue direct = engine.metrics_json();
  EXPECT_EQ(metrics->keys(), direct.keys());

  const JsonValue* engine_block = metrics->find("engine");
  ASSERT_NE(engine_block, nullptr);
  EXPECT_NE(engine_block->find("workers"), nullptr);
  EXPECT_NE(engine_block->find("by_kind"), nullptr);
  const JsonValue* obs_block = metrics->find("obs");
  ASSERT_NE(obs_block, nullptr);
  EXPECT_NE(obs_block->find("counters"), nullptr);
  EXPECT_NE(obs_block->find("histograms"), nullptr);
}

// stats_every=N streams a stats event after every N completed scenarios —
// the long-lived-session health feed — without disturbing the
// accepted/result/done framing.
TEST(ServeSession, PeriodicStatsFollowEveryCompletedScenario) {
  ExperimentEngine engine = make_engine();
  ServeOptions options;
  options.stats_every = 1;
  const auto events =
      run_session(engine, std::string(kCampaignSpec) + "\n", options);

  // accepted + (result + stats) x 2 + done.
  ASSERT_EQ(events.size(), 6u);
  std::size_t stats_events = 0;
  for (const JsonValue& event : events) {
    if (event_type(event) != "stats") continue;
    ++stats_events;
    EXPECT_NE(event.find("metrics"), nullptr);
  }
  EXPECT_EQ(stats_events, 2u);
  EXPECT_EQ(event_type(events.back()), "done");
}

// Two sessions against one engine: the second client's identical campaign
// is served entirely from the shared cache — the multi-client dedup the
// serve mode exists for.
TEST(ServeSession, SecondSessionDedupsThroughSharedEngine) {
  ExperimentEngine engine = make_engine();
  (void)run_session(engine, std::string(kCampaignSpec) + "\n");
  const EngineStats after_first = engine.stats();
  EXPECT_EQ(after_first.jobs_computed, 2u);

  const auto events = run_session(engine, std::string(kCampaignSpec) + "\n");
  ASSERT_EQ(events.size(), 4u);  // accepted + 2 results + done

  const EngineStats after_second = engine.stats();
  EXPECT_EQ(after_second.jobs_computed, 2u);  // nothing recomputed
  EXPECT_EQ(after_second.cache_hits, after_first.cache_hits + 2);
}

// --full attaches the kind's complete display document to every result.
TEST(ServeSession, FullResultsAttachTheDisplayDocument) {
  ExperimentEngine engine = make_engine();
  ServeOptions options;
  options.full_results = true;
  const auto events =
      run_session(engine, std::string(kSingleSpec) + "\n", options);
  ASSERT_EQ(events.size(), 3u);
  const JsonValue* full = events[1].find("result");
  ASSERT_NE(full, nullptr);
  EXPECT_NE(full->find("power_w"), nullptr);
}

}  // namespace
}  // namespace gpupower::core
